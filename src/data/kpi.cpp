#include "data/kpi.hpp"

#include <cassert>
#include <cstdio>

#include "common/rng.hpp"

namespace leaf::data {

std::string to_string(KpiGroup g) {
  switch (g) {
    case KpiGroup::kResourceUtilization: return "resource_utilization";
    case KpiGroup::kNetworkPerformance: return "network_performance";
    case KpiGroup::kUserExperience: return "user_experience";
  }
  return "?";
}

std::string to_string(TargetKpi t) {
  switch (t) {
    case TargetKpi::kDVol: return "DVol";
    case TargetKpi::kPU: return "PU";
    case TargetKpi::kDTP: return "DTP";
    case TargetKpi::kREst: return "REst";
    case TargetKpi::kCDR: return "CDR";
    case TargetKpi::kGDR: return "GDR";
  }
  return "?";
}

std::string kpi_name(TargetKpi t) {
  switch (t) {
    case TargetKpi::kDVol: return "pdcp_dl_datavol_mb";
    case TargetKpi::kPU: return "peak_active_ues";
    case TargetKpi::kDTP: return "dl_throughput_mbps";
    case TargetKpi::kREst: return "rrc_estab_success";
    case TargetKpi::kCDR: return "s1u_call_drop_rate";
    case TargetKpi::kGDR: return "rtp_gap_duration_ratio";
  }
  return "?";
}

bool parse_target(const std::string& short_name, TargetKpi& out) {
  for (TargetKpi t : kAllTargets) {
    if (to_string(t) == short_name) {
      out = t;
      return true;
    }
  }
  return false;
}

namespace {

KpiGroup group_of_target(TargetKpi t) {
  switch (t) {
    case TargetKpi::kDVol:
    case TargetKpi::kPU:
      return KpiGroup::kResourceUtilization;
    case TargetKpi::kDTP:
    case TargetKpi::kREst:
      return KpiGroup::kNetworkPerformance;
    case TargetKpi::kCDR:
    case TargetKpi::kGDR:
      return KpiGroup::kUserExperience;
  }
  return KpiGroup::kResourceUtilization;
}

LatentAnchor anchor_of_target(TargetKpi t) {
  switch (t) {
    case TargetKpi::kDVol: return LatentAnchor::kDVol;
    case TargetKpi::kPU: return LatentAnchor::kPU;
    case TargetKpi::kDTP: return LatentAnchor::kDTP;
    case TargetKpi::kREst: return LatentAnchor::kREst;
    case TargetKpi::kCDR: return LatentAnchor::kCDR;
    case TargetKpi::kGDR: return LatentAnchor::kGDR;
  }
  return LatentAnchor::kNone;
}

// Name stems for generated companion KPIs, per anchor.  Real operator KPI
// catalogues look like this: a base quantity with direction / layer /
// aggregation suffixes.
const char* stem_of(LatentAnchor a) {
  switch (a) {
    case LatentAnchor::kDVol: return "dl_traffic";
    case LatentAnchor::kPU: return "active_ue";
    case LatentAnchor::kDTP: return "throughput";
    case LatentAnchor::kREst: return "rrc_conn";
    case LatentAnchor::kCDR: return "drop_evt";
    case LatentAnchor::kGDR: return "rtp_media";
    case LatentAnchor::kCoverage: return "coverage";
    case LatentAnchor::kMobility: return "handover";
    case LatentAnchor::kNone: return "aux";
  }
  return "aux";
}

const char* const kSuffixes[] = {"avg",  "max",   "p95",  "sum",  "ul",
                                 "dl",   "rate",  "cnt",  "time", "ratio",
                                 "prb",  "qci1",  "qci9", "erab", "pct"};

KpiGroup group_of_anchor(LatentAnchor a) {
  switch (a) {
    case LatentAnchor::kDVol:
    case LatentAnchor::kPU:
      return KpiGroup::kResourceUtilization;
    case LatentAnchor::kDTP:
    case LatentAnchor::kREst:
    case LatentAnchor::kCoverage:
    case LatentAnchor::kMobility:
      return KpiGroup::kNetworkPerformance;
    case LatentAnchor::kCDR:
    case LatentAnchor::kGDR:
      return KpiGroup::kUserExperience;
    case LatentAnchor::kNone:
      return KpiGroup::kResourceUtilization;
  }
  return KpiGroup::kResourceUtilization;
}

}  // namespace

KpiSchema KpiSchema::build(int num_kpis, std::uint64_t seed) {
  assert(num_kpis >= 9);
  KpiSchema schema;
  Rng rng(seed);

  auto add = [&](KpiSpec s) { schema.specs_.push_back(std::move(s)); };

  // 1) The six forecast targets, always first, in TargetKpi order.
  for (TargetKpi t : kAllTargets) {
    KpiSpec s;
    s.name = kpi_name(t);
    s.group = group_of_target(t);
    s.anchor = anchor_of_target(t);
    s.exponent = 1.0;
    s.scale = 1.0;
    s.noise_sigma = 0.0;  // targets are the latent values themselves
    s.is_target = true;
    s.target = t;
    schema.target_columns_[static_cast<std::size_t>(t)] =
        static_cast<int>(schema.specs_.size());
    add(std::move(s));
  }

  // 2) The named case-study anchors (§5): the coverage representative and
  //    the voice-gap representative.
  {
    KpiSpec cov;
    cov.name = "badcoveragemeasurements";
    cov.group = KpiGroup::kNetworkPerformance;
    cov.anchor = LatentAnchor::kCoverage;
    cov.exponent = 1.0;
    cov.scale = 1.0;
    cov.noise_sigma = 0.08;
    add(std::move(cov));

    KpiSpec rtp;
    rtp.name = "rtp_gap_ratio_medium";
    rtp.group = KpiGroup::kUserExperience;
    rtp.anchor = LatentAnchor::kGDR;
    rtp.exponent = 0.9;
    rtp.scale = 0.6;
    rtp.noise_sigma = 0.25;
    add(std::move(rtp));

    KpiSpec mob;
    mob.name = "handover_success_cnt";
    mob.group = KpiGroup::kNetworkPerformance;
    mob.anchor = LatentAnchor::kMobility;
    mob.exponent = 1.0;
    mob.scale = 1.0;
    mob.noise_sigma = 0.12;
    add(std::move(mob));
  }

  // 3) Companion KPIs, allocated round-robin with weights matching the
  //    case study: the DVol group is by far the largest (32 of 224 in the
  //    paper), followed by the other targets, coverage, mobility, and a
  //    tail of independent noise/auxiliary KPIs.
  struct Quota {
    LatentAnchor anchor;
    double weight;
  };
  const Quota quotas[] = {
      {LatentAnchor::kDVol, 31.0},     {LatentAnchor::kPU, 20.0},
      {LatentAnchor::kDTP, 20.0},      {LatentAnchor::kREst, 22.0},
      {LatentAnchor::kCDR, 14.0},      {LatentAnchor::kGDR, 14.0},
      {LatentAnchor::kCoverage, 18.0}, {LatentAnchor::kMobility, 16.0},
      {LatentAnchor::kNone, 60.0},
  };
  double total_w = 0.0;
  for (const auto& q : quotas) total_w += q.weight;

  const int remaining = num_kpis - schema.size();
  int emitted = 0;
  // Largest-remainder allocation so group proportions track the paper's at
  // every schema size.
  std::array<int, 9> counts{};
  std::array<double, 9> frac{};
  for (std::size_t i = 0; i < 9; ++i) {
    const double exact = quotas[i].weight / total_w * remaining;
    counts[i] = static_cast<int>(exact);
    frac[i] = exact - counts[i];
    emitted += counts[i];
  }
  while (emitted < remaining) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < 9; ++i)
      if (frac[i] > frac[best]) best = i;
    ++counts[best];
    frac[best] = -1.0;
    ++emitted;
  }

  for (std::size_t qi = 0; qi < 9; ++qi) {
    const LatentAnchor a = quotas[qi].anchor;
    for (int k = 0; k < counts[qi]; ++k) {
      KpiSpec s;
      char buf[80];
      std::snprintf(buf, sizeof buf, "%s_%s_%02d", stem_of(a),
                    kSuffixes[static_cast<std::size_t>(k) % std::size(kSuffixes)],
                    k);
      s.name = buf;
      s.group = group_of_anchor(a);
      s.anchor = a;
      if (a == LatentAnchor::kNone) {
        s.exponent = 1.0;
        s.scale = rng.lognormal(0.0, 1.0);
        s.noise_sigma = rng.uniform(0.15, 0.5);
      } else {
        s.exponent = rng.uniform(0.7, 1.3);
        s.scale = rng.lognormal(0.0, 0.8);
        s.noise_sigma = rng.uniform(0.05, 0.25);
      }
      // Roughly a third of companion KPIs get redefined by software
      // upgrades; volume-mix features react to mobility changes.
      s.upgrade_sensitive = rng.bernoulli(0.35);
      s.mobility_mix_sensitive =
          (a == LatentAnchor::kDVol || a == LatentAnchor::kPU ||
           a == LatentAnchor::kMobility) &&
          rng.bernoulli(0.5);
      add(std::move(s));
    }
  }

  assert(schema.size() == num_kpis);
  return schema;
}

int KpiSchema::target_column(TargetKpi t) const {
  return target_columns_[static_cast<std::size_t>(t)];
}

int KpiSchema::column_of(const std::string& name) const {
  for (std::size_t i = 0; i < specs_.size(); ++i)
    if (specs_[i].name == name) return static_cast<int>(i);
  return -1;
}

std::vector<int> KpiSchema::columns_for_anchor(LatentAnchor a) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < specs_.size(); ++i)
    if (specs_[i].anchor == a) out.push_back(static_cast<int>(i));
  return out;
}

double paper_dispersion(TargetKpi t, bool evolving) {
  // Table 2 (Evolving) and Table 6 (Fixed).
  switch (t) {
    case TargetKpi::kDVol: return evolving ? 0.81 : 0.73;
    case TargetKpi::kPU: return evolving ? 1.76 : 1.34;
    case TargetKpi::kDTP: return evolving ? 0.59 : 0.57;
    case TargetKpi::kREst: return evolving ? 0.85 : 0.77;
    case TargetKpi::kCDR: return evolving ? 1.60 : 1.35;
    case TargetKpi::kGDR: return evolving ? 8.52 : 2.12;
  }
  return 1.0;
}

}  // namespace leaf::data
