#include "data/generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/calendar.hpp"
#include "common/rng.hpp"
#include "data/temporal.hpp"

namespace leaf::data {

namespace {

/// Deterministic seed for the (enb, day) log so generation is
/// random-access (no cross-day RNG coupling).
std::uint64_t log_seed(std::uint64_t seed, int enb_id, int day) {
  std::uint64_t s = seed;
  s ^= static_cast<std::uint64_t>(enb_id) * 0x9E3779B97F4A7C15ULL;
  s ^= static_cast<std::uint64_t>(day) * 0xD1B54A32D192ED03ULL;
  std::uint64_t st = s;
  return splitmix64(st);
}

/// Deterministic per-(enb, kpi) salt for companion-KPI idiosyncrasies.
std::uint64_t kpi_salt(std::uint64_t seed, int enb_id, int column) {
  std::uint64_t s = seed ^ 0xABCDEF0123456789ULL;
  s ^= static_cast<std::uint64_t>(enb_id) * 0xBF58476D1CE4E5B9ULL;
  s ^= static_cast<std::uint64_t>(column) * 0x94D049BB133111EBULL;
  std::uint64_t st = s;
  return splitmix64(st);
}

double salted_uniform(std::uint64_t salt) {
  std::uint64_t st = salt;
  return static_cast<double>(splitmix64(st) >> 11) * 0x1.0p-53;
}

}  // namespace

LatentState latent_state(const EnbProfile& p, int day, std::uint64_t seed) {
  Rng rng(log_seed(seed, p.id, day));
  LatentState s;

  // --- demand ---------------------------------------------------------
  const double weekly = weekly_factor(day, p.weekly_amp, p.weekly_phase);
  const double seasonal = seasonal_factor(day, 0.08);
  const double growth = growth_factor(day, p.growth_rate);
  const double covid = covid_factor(day, 0.30 * p.covid_sensitivity);
  const double drift21 = gradual_drift_factor(day, p.drift2021_amp);
  const double demand_mult = weekly * seasonal * growth * covid * drift21;

  s.dvol_mb = p.base_volume_mb * demand_mult * rng.lognormal(0.0, 0.10);

  // --- users ----------------------------------------------------------
  // Peak UEs track demand sub-linearly and carry heavier bursts (events,
  // venue traffic), giving PU its higher dispersion (Table 2).
  double pu = p.base_peak_ues * weekly_factor(day, p.weekly_amp * 0.8, p.weekly_phase) *
              growth * std::pow(covid, 0.7) * std::pow(drift21, 0.8) *
              rng.lognormal(0.0, 0.15);
  // Venue / event episodes plus daily spikes give PU its Table-2
  // burstiness and >1 dispersion.
  pu *= episode_multiplier(seed, p.id, day, /*stream_tag=*/3, 0.12, 3.0);
  if (rng.bernoulli(0.04)) pu *= 1.0 + 1.5 * std::abs(rng.heavy_tail(3.0));
  if (in_pu_loss_window(day) && p.pu_loss_affected) pu = 0.0;  // outage
  s.peak_ues = pu;

  // --- radio quality / coverage ---------------------------------------
  const double season_phase = salted_uniform(kpi_salt(seed, p.id, -1)) * 2.0 * M_PI;
  const double quality = std::clamp(
      p.coverage_quality +
          0.04 * std::sin(2.0 * M_PI * day / 365.25 + season_phase) +
          0.02 * rng.normal(),
      0.3, 1.0);
  // Bad-coverage measurement count scales with active users sampling the
  // cell edge; the case-study LEAplot (Fig. 8b) shows values up to ~2e5+.
  const double effective_users = std::max(s.peak_ues, 0.1 * p.base_peak_ues);
  s.bad_coverage =
      effective_users * 280.0 * (1.0 - quality) * rng.lognormal(0.0, 0.12);

  // --- congestion & throughput ----------------------------------------
  // Capacity in MB/day at full utilization: Mbps / 8 * 86400.
  const double capacity_mb_day = p.capacity_mbps * 10800.0;
  s.congestion = s.dvol_mb / capacity_mb_day;
  s.throughput = p.capacity_mbps * quality / (1.0 + 3.0 * s.congestion) *
                 rng.lognormal(0.0, 0.08);

  // --- signaling -------------------------------------------------------
  // RRC establishments track the *typical* user level (sessions per UE is
  // stable), not PU's bursts or the PU collection outage — REst stays
  // periodic and moderately dispersed (Table 2).
  const double smooth_users = p.base_peak_ues *
                              weekly_factor(day, p.weekly_amp * 0.8, p.weekly_phase) *
                              growth * std::pow(covid, 0.7) *
                              std::pow(drift21, 0.8);
  s.rrc_success = smooth_users * rng.uniform(42.0, 50.0) *
                  rng.lognormal(0.0, 0.10);

  // --- user experience --------------------------------------------------
  // Multi-week fault episodes (bad transport link, interference source)
  // drive the user-experience KPIs' burstiness; see
  // temporal.hpp::episode_multiplier for why this matters for triggered
  // retraining.
  const double base_cdr =
      0.002 + 0.008 * salted_uniform(kpi_salt(seed, p.id, -2));
  double cdr = base_cdr * (1.0 + 6.0 * s.congestion) *
               episode_multiplier(seed, p.id, day, /*stream_tag=*/1, 0.20, 6.0) *
               rng.lognormal(0.0, 0.25);
  if (rng.bernoulli(0.05)) cdr += 0.02 * std::abs(rng.heavy_tail(2.0));
  s.call_drop = std::clamp(cdr, 0.0, 1.0);

  // GDR episodes are long and severe (media-path faults persist for
  // weeks): by the time the drift detector reacts, a naive retrain window
  // is still inside the episode, which is what makes triggered retraining
  // backfire on GDR (Table 4).
  const double base_gdr =
      0.0005 + 0.0025 * salted_uniform(kpi_salt(seed, p.id, -3));
  // The persistent component couples weakly to congestion (voice quality
  // degrades under load), so GDR also carries the slow demand drift.
  double gdr = base_gdr * std::sqrt(1.0 + 2.0 * s.congestion) *
               episode_multiplier(seed, p.id, day, /*stream_tag=*/2, 0.25,
                                  15.0, /*slot_len=*/90, /*min_days=*/21,
                                  /*max_days=*/75) *
               rng.lognormal(0.0, 0.40);
  if (rng.bernoulli(0.03)) gdr += 0.03 * std::abs(rng.heavy_tail(2.0));
  s.gap_ratio = std::clamp(gdr, 0.0, 1.0);

  // --- mobility ---------------------------------------------------------
  s.mobility = mobility_level(day, p.covid_sensitivity);
  s.handovers = effective_users * 8.0 * s.mobility * rng.lognormal(0.0, 0.15);

  return s;
}

namespace {

double anchor_value(const LatentState& s, LatentAnchor a) {
  switch (a) {
    case LatentAnchor::kDVol: return s.dvol_mb;
    case LatentAnchor::kPU: return s.peak_ues;
    case LatentAnchor::kDTP: return s.throughput;
    case LatentAnchor::kREst: return s.rrc_success;
    case LatentAnchor::kCDR: return s.call_drop;
    case LatentAnchor::kGDR: return s.gap_ratio;
    case LatentAnchor::kCoverage: return s.bad_coverage;
    case LatentAnchor::kMobility: return s.handovers;
    case LatentAnchor::kNone: return 1.0;
  }
  return 1.0;
}

}  // namespace

void synthesize_log(const KpiSchema& schema, const EnbProfile& profile,
                    int day, const LatentState& latent, std::uint64_t seed,
                    float* out) {
  Rng rng(log_seed(seed, profile.id, day) ^ 0x5A5A5A5A5A5A5A5AULL);

  for (int c = 0; c < schema.size(); ++c) {
    const KpiSpec& spec = schema.spec(c);
    double v = 0.0;

    if (spec.is_target) {
      v = anchor_value(latent, spec.anchor);
    } else if (spec.anchor == LatentAnchor::kNone) {
      // Independent auxiliary KPI: per-(enb, kpi) base level with a slow
      // idiosyncratic oscillation.
      const std::uint64_t salt = kpi_salt(seed, profile.id, c);
      const double base = spec.scale * (0.5 + 1.5 * salted_uniform(salt));
      const double phase = salted_uniform(salt ^ 0xF0F0F0F0ULL) * 2.0 * M_PI;
      v = base * (1.0 + 0.3 * std::sin(2.0 * M_PI * day / 50.0 + phase)) *
          rng.lognormal(0.0, spec.noise_sigma);
    } else {
      const double a = std::max(anchor_value(latent, spec.anchor), 1e-9);
      v = spec.scale * std::pow(a, spec.exponent) *
          rng.lognormal(0.0, spec.noise_sigma);
      if (spec.mobility_mix_sensitive) {
        // Traffic-mix shift: while mobility is suppressed the companion's
        // coupling to its anchor weakens — the feature means something
        // slightly different, so the learned X->y mapping degrades.
        v *= 0.6 + 0.4 * latent.mobility;
      }
    }

    if (spec.upgrade_sensitive) {
      // Endogenous drift: software upgrades change the KPI definition.
      v *= upgrade_scale(day, kpi_salt(seed, 0, c));
    }

    out[c] = static_cast<float>(v);
  }
}

CellularDataset generate_dataset(KpiSchema schema,
                                 std::vector<EnbProfile> fleet, bool evolving,
                                 std::string name, int num_days,
                                 std::uint64_t seed) {
  CellularDataset ds(std::move(schema), std::move(fleet), num_days, evolving,
                     std::move(name));
  const auto& sch = ds.schema();
  const auto& profiles = ds.profiles();
  const std::size_t k = static_cast<std::size_t>(sch.size());

  for (int day = 0; day < num_days; ++day) {
    std::vector<int> enbs;
    for (std::size_t i = 0; i < profiles.size(); ++i)
      if (profiles[i].install_day <= day) enbs.push_back(static_cast<int>(i));

    std::vector<float> values(enbs.size() * k);
    for (std::size_t i = 0; i < enbs.size(); ++i) {
      const EnbProfile& p = profiles[static_cast<std::size_t>(enbs[i])];
      const LatentState latent = latent_state(p, day, seed);
      synthesize_log(sch, p, day, latent, seed, values.data() + i * k);
    }
    ds.append_day(std::move(enbs), std::move(values));
  }
  return ds;
}

CellularDataset generate_fixed_dataset(const Scale& scale, std::uint64_t seed) {
  KpiSchema schema = KpiSchema::build(scale.num_kpis, seed ^ 0x11);
  auto fleet = build_fixed_fleet(scale.fixed_enbs, seed ^ 0x22);
  return generate_dataset(std::move(schema), std::move(fleet),
                          /*evolving=*/false, "Fixed", cal::study_length(),
                          seed);
}

CellularDataset generate_evolving_dataset(const Scale& scale,
                                          std::uint64_t seed) {
  KpiSchema schema = KpiSchema::build(scale.num_kpis, seed ^ 0x11);
  auto fleet = build_evolving_fleet(scale.evolving_enbs_max, seed ^ 0x33);
  return generate_dataset(std::move(schema), std::move(fleet),
                          /*evolving=*/true, "Evolving", cal::study_length(),
                          seed);
}

}  // namespace leaf::data
