// leaf::obs — low-overhead metrics, span timing, and runtime telemetry.
//
// The registry holds three metric kinds plus RAII span sites:
//   * Counter    — monotonically increasing u64.  Increments go to one of
//                  a fixed set of cache-line-padded per-thread stripes
//                  (lock-free relaxed adds) that are summed on scrape, so
//                  a counter on a leaf::par hot path costs one uncontended
//                  atomic add and its final value is independent of thread
//                  scheduling (integer addition commutes).
//   * Gauge      — last-written double (set from sequential code only).
//   * Histogram  — fixed upper-bound buckets (u64 counts) plus sum/count.
//                  By repo convention histograms record *wall-clock* data
//                  and their names contain `_seconds`, so determinism
//                  tests can mask them by name.
//   * SpanSite   — per-call-site aggregate (count, total/max nanoseconds)
//                  fed by the RAII `LEAF_SPAN("site")` macro.
//
// Determinism contract (DESIGN.md "Observability"): every metric whose
// name does NOT contain `_seconds` is a pure function of the logical
// execution — bit-identical at any LEAF_THREADS — while `*_seconds*`
// metrics (and span durations) carry wall-clock and are explicitly
// excluded from cross-thread / cross-resume comparisons.
//
// Compile gate: building with -DLEAF_OBS=OFF defines LEAF_OBS_ENABLED=0,
// which turns Counter::inc / Histogram::observe / LEAF_SPAN into no-ops
// the optimizer deletes.  Runtime gate: the LEAF_OBS environment variable
// ("0"/"off" disables) or set_enabled(false) stops span clock reads and
// event emission without recompiling.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef LEAF_OBS_ENABLED
#define LEAF_OBS_ENABLED 1
#endif

namespace leaf::obs {

inline constexpr bool kCompiledIn = LEAF_OBS_ENABLED != 0;

/// Runtime switch.  Defaults to the LEAF_OBS environment variable (unset,
/// "1", "on" => enabled); always false when compiled out.
bool enabled();
void set_enabled(bool on);

/// Steady-clock seconds since an arbitrary epoch (bench stopwatches and
/// span timing all route through this one monotonic source).
inline double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Simple monotonic stopwatch for code that needs an explicit duration
/// (benches, retrain latency) rather than a scoped span.
class Stopwatch {
 public:
  Stopwatch() : t0_(monotonic_seconds()) {}
  void restart() { t0_ = monotonic_seconds(); }
  double seconds() const { return monotonic_seconds() - t0_; }
  double ms() const { return seconds() * 1e3; }

 private:
  double t0_;
};

/// Standard latency bucket bounds in seconds, shared by the timing
/// histograms (retrain latency, snapshot writes) so dashboards line up.
inline const std::vector<double>& latency_buckets() {
  static const std::vector<double> bounds{0.0005, 0.001, 0.005, 0.01, 0.05,
                                          0.1,    0.5,   1.0,   5.0};
  return bounds;
}

// --- striped counter -------------------------------------------------------

inline constexpr std::size_t kStripes = 16;

/// Stable per-thread stripe index in [0, kStripes).
inline std::size_t stripe_of_this_thread() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return idx;
}

class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if constexpr (!kCompiledIn) {
      (void)n;
      return;
    }
    slots_[stripe_of_this_thread()].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Slot& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() {
    for (Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  Slot slots_[kStripes];
};

class Gauge {
 public:
  void set(double v) {
    if constexpr (kCompiledIn) v_.store(v, std::memory_order_relaxed);
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
/// an implicit +Inf bucket catches the overflow.  Bucket/count fields are
/// u64 (scheduling-independent); `sum` accumulates doubles whose merge
/// order is unspecified — by convention histograms hold wall-clock data
/// and are named `*_seconds`, which keeps them out of determinism checks.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds+1 slots
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Log-bucketed latency histogram with quantile queries (HdrHistogram
/// style).  Values are nanosecond ticks bucketed log-linearly: exact
/// buckets below 128 ns, then 128 sub-buckets per power of two, so a
/// bucket's midpoint representative is within 1/256 (~0.4%) of any sample
/// it holds — `quantile(p)` agrees with an exact sorted-sample quantile
/// to well under the 1% the SLO views need.  Recording is one relaxed
/// atomic add on a per-bucket slot; adds commute like the striped
/// counters, so the scraped distribution is exact and independent of
/// thread scheduling.  By repo convention these hold wall-clock data and
/// their names contain `_seconds`, keeping every exposed line (quantiles,
/// `_sum`, `_count`) out of the determinism diffs.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 7;  // 128 sub-buckets per octave
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBits;
  // Highest index: e = 63 → (63 - kSubBits) * kSubBuckets + (kSubBuckets - 1),
  // so the table needs (64 - kSubBits) * kSubBuckets... plus one more octave's
  // worth of sub-buckets for the top mantissa range.
  static constexpr std::size_t kBucketCount =
      (64 - kSubBits) * kSubBuckets + kSubBuckets;

  LatencyHistogram();

  /// Records a duration in seconds (negative values clamp to zero).
  void observe(double seconds);
  /// Records a duration in nanosecond ticks.
  void record_ns(std::uint64_t ns);

  /// Value (seconds) at or below which a `p` fraction of samples fall,
  /// using the matching bucket's midpoint representative.  0 when empty.
  double quantile(double p) const;

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum_seconds() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }
  void reset();

  /// Bucket index for a tick value (exposed for tests).
  static std::size_t index_of(std::uint64_t ns);
  /// Midpoint representative tick of bucket `idx` (exposed for tests).
  static std::uint64_t representative_ns(std::size_t idx);

 private:
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

// --- spans -----------------------------------------------------------------

/// Aggregated timing for one instrumented site.  `count` is logical
/// (deterministic); the nanosecond fields are wall-clock.
class SpanSite {
 public:
  explicit SpanSite(std::string name) : name_(std::move(name)) {}

  void record_ns(std::uint64_t ns) {
    if constexpr (!kCompiledIn) {
      (void)ns;
      return;
    }
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t prev = max_ns_.load(std::memory_order_relaxed);
    while (ns > prev &&
           !max_ns_.compare_exchange_weak(prev, ns, std::memory_order_relaxed))
      ;
  }

  /// Count a traversal without timing (runtime-disabled spans still keep
  /// their logical call count deterministic).
  void record_untimed() {
    if constexpr (kCompiledIn) count_.fetch_add(1, std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double total_seconds() const {
    return static_cast<double>(total_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }
  double max_seconds() const {
    return static_cast<double>(max_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }
  void reset() {
    count_.store(0, std::memory_order_relaxed);
    total_ns_.store(0, std::memory_order_relaxed);
    max_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// RAII span: reads the steady clock only when obs is runtime-enabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanSite& site) : site_(&site) {
    if constexpr (kCompiledIn) {
      if (enabled()) {
        timed_ = true;
        t0_ = std::chrono::steady_clock::now();
      } else {
        site_->record_untimed();
      }
    }
  }
  ~ScopedSpan() {
    if constexpr (kCompiledIn) {
      if (timed_) {
        const auto dt = std::chrono::steady_clock::now() - t0_;
        site_->record_ns(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
      }
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanSite* site_;
  std::chrono::steady_clock::time_point t0_{};
  bool timed_ = false;
};

// --- registry --------------------------------------------------------------

class MetricsRegistry {
 public:
  /// Process-wide registry every instrumented site reports into.
  static MetricsRegistry& global();

  /// Registration is idempotent: the first call creates the series, later
  /// calls return the same handle.  Handles are stable for the registry's
  /// lifetime, so hot paths hoist them into static locals.  `labels` is a
  /// Prometheus label body without braces (e.g. `family="GBDT"`), empty
  /// for none.
  Counter& counter(const std::string& name, const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& labels = "");
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& bounds,
                       const std::string& labels = "");
  /// Log-bucketed latency series, exposed as a Prometheus summary with
  /// quantile lines.  Names must contain `_seconds` (wall-clock data).
  LatencyHistogram& latency(const std::string& name,
                            const std::string& labels = "");
  SpanSite& span_site(const std::string& name);

  /// Prometheus text exposition, sorted by (name, labels) so the output
  /// is byte-stable for a given set of metric values.
  std::string scrape() const;
  /// The same data as a JSON object ({"metrics": [...], "spans": [...]}).
  std::string scrape_json() const;

  /// Zeroes every value (registration survives).  For tests and benches
  /// that compare two in-process runs.
  void reset_values();

 private:
  MetricsRegistry() = default;

  using Key = std::pair<std::string, std::string>;  // (name, labels)

  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
  std::map<Key, std::unique_ptr<LatencyHistogram>> latencies_;
  std::map<std::string, std::unique_ptr<SpanSite>> spans_;
};

/// `key="value"` label fragment with the value minimally escaped.
std::string label(const std::string& key, const std::string& value);

}  // namespace leaf::obs

// RAII span macro.  Compiles to nothing with -DLEAF_OBS=OFF; with obs on,
// resolves its site once (magic static) and records a scoped duration.
#if LEAF_OBS_ENABLED
#define LEAF_OBS_CONCAT2(a, b) a##b
#define LEAF_OBS_CONCAT(a, b) LEAF_OBS_CONCAT2(a, b)
#define LEAF_SPAN(site_name)                                       \
  static ::leaf::obs::SpanSite& LEAF_OBS_CONCAT(                   \
      leaf_obs_site_, __LINE__) =                                  \
      ::leaf::obs::MetricsRegistry::global().span_site(site_name); \
  ::leaf::obs::ScopedSpan LEAF_OBS_CONCAT(leaf_obs_span_,          \
                                          __LINE__)(               \
      LEAF_OBS_CONCAT(leaf_obs_site_, __LINE__))
#else
#define LEAF_SPAN(site_name) ((void)0)
#endif
