// leaf::obs — deterministic distributed tracing for the serving plane.
//
// A trace follows one RPC request through the server: decode → admission
// → batch → shard-predict → respond.  The pieces:
//
//   * TraceId        — 16 opaque bytes carried in every LNET v2 frame.
//                      Clients may mint their own; a server derives one
//                      deterministically from (connection, request-id)
//                      when the frame carries zeros, so the id — and with
//                      it the sampling decision and the whole span tree —
//                      is a pure function of the logical request schedule:
//                      bit-identical at any LEAF_THREADS and across a
//                      SIGKILL + --resume cycle.
//   * TraceSpan      — one node of the tree.  Identity (span id, parent
//                      id, name, tid, args) is logical; only `ts_us` /
//                      `dur_us` read the wall clock, and they are emitted
//                      as the Chrome-mandated "ts"/"dur" keys, which
//                      determinism checks strip by name — the same
//                      contract the `_seconds` metrics already obey.
//   * SpanCollector  — a small per-request (or per-batch) buffer of spans
//                      opened/closed while work is in flight.  Collectors
//                      are private to one logical unit (a Pending request,
//                      a per-shard batch), so the parallel phase of the
//                      net pump can time spans without synchronization;
//                      the serial phase assigns ids and flushes them in
//                      deterministic response order.
//   * Tracer         — single-writer JSONL sink in Chrome trace-event
//                      array format (catapult / Perfetto loadable).  The
//                      footer is written on clean close; a SIGKILL leaves
//                      a truncated-but-loadable array, matching the
//                      snapshot story (crashes lose the tail, never the
//                      file's validity as evidence).
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace leaf::obs {

using TraceId = std::array<std::uint8_t, 16>;

/// True when every byte is zero (the wire format's "no trace attached").
bool trace_is_zero(const TraceId& id);

/// 32 lowercase hex characters.
std::string trace_hex(const TraceId& id);

/// 16 lowercase hex characters for a span id.
std::string span_hex(std::uint64_t id);

/// Deterministic trace id for a request that arrived without one: a pure
/// function of (connection id, request id), never of wall clock or thread
/// scheduling.  Never all-zero.
TraceId derive_trace_id(std::uint64_t conn, std::uint64_t request_id);

/// Deterministic span id: a pure function of (trace, site name, parent
/// span, per-request index).  Never zero (zero means "no parent").
std::uint64_t derive_span_id(const TraceId& trace, const char* name,
                             std::uint64_t parent, std::uint64_t index);

/// FNV-1a over the trace bytes; the sampling hash.
std::uint64_t trace_hash(const TraceId& id);

/// One node of a span tree.  `args` is a pre-rendered JSON fragment of
/// extra key/value pairs (e.g. `"shard": 3, "rows": 2`), empty for none.
struct TraceSpan {
  std::string name;
  TraceId trace{};
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = root of the trace
  int tid = 0;                  // logical lane (shard index; 0 = driver)
  std::uint64_t ts_us = 0;      // wall-clock (masked: Chrome "ts")
  std::uint64_t dur_us = 0;     // wall-clock (masked: Chrome "dur")
  std::string args;
};

/// Scratch buffer of in-flight spans for one logical unit of work.  Not
/// thread-safe by design: ownership is the synchronization (one collector
/// per request / per-shard batch).
class SpanCollector {
 public:
  /// Opens a timed span and returns its index.
  std::size_t begin(std::string name, int tid = 0);
  /// Closes span `idx` (sets its duration from the monotonic clock).
  void end(std::size_t idx);
  /// Attaches a JSON args fragment to span `idx`.
  void annotate(std::size_t idx, std::string args);

  bool empty() const { return spans_.empty(); }
  void clear() { spans_.clear(); }
  const std::vector<TraceSpan>& spans() const { return spans_; }
  std::vector<TraceSpan>& mutable_spans() { return spans_; }

 private:
  std::vector<TraceSpan> spans_;
};

/// Single-writer Chrome trace-event sink.  Open/first-write emits the
/// array header; `close()` (or destruction) the footer.  Callers flush
/// spans only from serial code (the net pump's response phase), so the
/// internal mutex is belt-and-braces, not a throughput feature.
class Tracer {
 public:
  /// `sample_every` = N keeps every trace whose id hashes to 0 mod N
  /// (1 = everything).  The decision is a pure function of the trace id.
  explicit Tracer(std::string path, std::uint64_t sample_every = 1);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// False when the sink could not be opened or a write failed; the
  /// failure reason is in `error()`.  Callers must fail loudly.
  bool ok() const;
  std::string error() const;

  /// Deterministic sampling decision for one trace.
  bool sampled(const TraceId& trace) const;

  /// Appends one span record.  Also bumps the logical
  /// `leaf_trace_spans_total` counter.
  void write(const TraceSpan& span);

  /// Writes the array footer and closes the file.  Idempotent.
  void close();

  std::uint64_t spans_written() const { return spans_written_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::uint64_t sample_every_;
  mutable std::mutex mu_;
  std::FILE* f_ = nullptr;
  bool first_ = true;
  std::uint64_t spans_written_ = 0;
  std::string error_;
};

}  // namespace leaf::obs
