#include "obs/metrics.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace leaf::obs {

namespace {

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag = [] {
    if constexpr (!kCompiledIn) return false;
    const char* env = std::getenv("LEAF_OBS");
    if (env != nullptr &&
        (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
         std::strcmp(env, "OFF") == 0 || std::strcmp(env, "false") == 0))
      return false;
    return true;
  }();
  return flag;
}

/// Stable numeric formatting shared by both exposition formats (%.17g
/// round-trips doubles; integers print without an exponent).
std::string fmt_value(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      v > -1e15 && v < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(static_cast<std::int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string prom_series(const std::string& name, const std::string& labels) {
  return labels.empty() ? name : name + "{" + labels + "}";
}

}  // namespace

bool enabled() {
  if constexpr (!kCompiledIn) return false;
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_enabled(bool on) {
  enabled_flag().store(kCompiledIn && on, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  if constexpr (!kCompiledIn) {
    (void)v;
    return;
  }
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double prev = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(prev, prev + v,
                                     std::memory_order_relaxed))
    ;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

LatencyHistogram::LatencyHistogram()
    : buckets_(new std::atomic<std::uint64_t>[kBucketCount]) {
  for (std::size_t i = 0; i < kBucketCount; ++i) buckets_[i].store(0);
}

std::size_t LatencyHistogram::index_of(std::uint64_t ns) {
  if (ns < kSubBuckets) return static_cast<std::size_t>(ns);
  // v ∈ [2^e, 2^(e+1)): keep the top kSubBits+1 significant bits; the
  // mantissa m = v >> (e - kSubBits) lands in [kSubBuckets, 2*kSubBuckets).
  const int e = std::bit_width(ns) - 1;  // e >= kSubBits here
  const std::uint64_t m = ns >> (e - kSubBits);
  return static_cast<std::size_t>(e - kSubBits) * kSubBuckets +
         static_cast<std::size_t>(m);
}

std::uint64_t LatencyHistogram::representative_ns(std::size_t idx) {
  if (idx < kSubBuckets) return idx;  // exact buckets
  const std::size_t shift = idx / kSubBuckets - 1;
  const std::uint64_t m = kSubBuckets + idx % kSubBuckets;
  const std::uint64_t lo = m << shift;
  const std::uint64_t half = shift == 0 ? 0 : (std::uint64_t{1} << (shift - 1));
  return lo + half;
}

void LatencyHistogram::record_ns(std::uint64_t ns) {
  if constexpr (!kCompiledIn) {
    (void)ns;
    return;
  }
  buckets_[index_of(ns)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
}

void LatencyHistogram::observe(double seconds) {
  if (!(seconds > 0.0)) seconds = 0.0;
  record_ns(static_cast<std::uint64_t>(std::llround(seconds * 1e9)));
}

double LatencyHistogram::quantile(double p) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank)
      return static_cast<double>(representative_ns(i)) * 1e-9;
  }
  return static_cast<double>(representative_ns(kBucketCount - 1)) * 1e-9;
}

void LatencyHistogram::reset() {
  for (std::size_t i = 0; i < kBucketCount; ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[{name, labels}];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[{name, labels}];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& bounds,
                                      const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[{name, labels}];
  if (!slot) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

LatencyHistogram& MetricsRegistry::latency(const std::string& name,
                                           const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = latencies_[{name, labels}];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

SpanSite& MetricsRegistry::span_site(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = spans_[name];
  if (!slot) slot = std::make_unique<SpanSite>(name);
  return *slot;
}

std::string MetricsRegistry::scrape() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::string last_name;
  const auto type_line = [&out, &last_name](const std::string& name,
                                            const char* type) {
    if (name != last_name) {
      out += "# TYPE " + name + " " + type + "\n";
      last_name = name;
    }
  };

  for (const auto& [key, c] : counters_) {
    type_line(key.first, "counter");
    out += prom_series(key.first, key.second) + " " +
           fmt_value(static_cast<double>(c->value())) + "\n";
  }
  for (const auto& [key, g] : gauges_) {
    type_line(key.first, "gauge");
    out += prom_series(key.first, key.second) + " " + fmt_value(g->value()) +
           "\n";
  }
  for (const auto& [key, h] : histograms_) {
    type_line(key.first, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h->bounds().size(); ++i) {
      cumulative += h->bucket(i);
      const std::string le = label("le", fmt_value(h->bounds()[i]));
      out += key.first + "_bucket{" +
             (key.second.empty() ? le : key.second + "," + le) + "} " +
             fmt_value(static_cast<double>(cumulative)) + "\n";
    }
    cumulative += h->bucket(h->bounds().size());
    const std::string le_inf = label("le", "+Inf");
    out += key.first + "_bucket{" +
           (key.second.empty() ? le_inf : key.second + "," + le_inf) + "} " +
           fmt_value(static_cast<double>(cumulative)) + "\n";
    out += prom_series(key.first + "_sum", key.second) + " " +
           fmt_value(h->sum()) + "\n";
    out += prom_series(key.first + "_count", key.second) + " " +
           fmt_value(static_cast<double>(h->count())) + "\n";
  }
  // Latency summaries: every line (quantiles, _sum, _count) belongs to a
  // `_seconds` series, so the whole family is masked by name.  The
  // quantile labels use the short spelling ("0.99", not a 17-digit
  // round-trip) — they are identifiers, not measurements.
  static const char* const kQuantileNames[] = {"0.5", "0.9", "0.99", "0.999"};
  static const double kQuantiles[] = {0.5, 0.9, 0.99, 0.999};
  for (const auto& [key, lh] : latencies_) {
    type_line(key.first, "summary");
    for (std::size_t qi = 0; qi < 4; ++qi) {
      const double q = kQuantiles[qi];
      const std::string ql = label("quantile", kQuantileNames[qi]);
      out += key.first + "{" +
             (key.second.empty() ? ql : key.second + "," + ql) + "} " +
             fmt_value(lh->quantile(q)) + "\n";
    }
    out += prom_series(key.first + "_sum", key.second) + " " +
           fmt_value(lh->sum_seconds()) + "\n";
    out += prom_series(key.first + "_count", key.second) + " " +
           fmt_value(static_cast<double>(lh->count())) + "\n";
  }
  // Span sites: the call count is a logical metric; the duration series
  // carry `_seconds` so determinism checks mask them by name.
  for (const auto& [name, site] : spans_) {
    const std::string l = label("site", name);
    type_line("leaf_span_calls_total", "counter");
    out += "leaf_span_calls_total{" + l + "} " +
           fmt_value(static_cast<double>(site->count())) + "\n";
  }
  for (const auto& [name, site] : spans_) {
    const std::string l = label("site", name);
    type_line("leaf_span_seconds_total", "counter");
    out += "leaf_span_seconds_total{" + l + "} " +
           fmt_value(site->total_seconds()) + "\n";
  }
  for (const auto& [name, site] : spans_) {
    const std::string l = label("site", name);
    type_line("leaf_span_seconds_max", "gauge");
    out += "leaf_span_seconds_max{" + l + "} " +
           fmt_value(site->max_seconds()) + "\n";
  }
  return out;
}

std::string MetricsRegistry::scrape_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"metrics\": [";
  bool first = true;
  const auto head = [&](const Key& key, const char* type) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"" + json_escape(key.first) + "\", \"labels\": \"" +
           json_escape(key.second) + "\", \"type\": \"" + type + "\"";
  };
  for (const auto& [key, c] : counters_) {
    head(key, "counter");
    out += ", \"value\": " + fmt_value(static_cast<double>(c->value())) + "}";
  }
  for (const auto& [key, g] : gauges_) {
    head(key, "gauge");
    out += ", \"value\": " + fmt_value(g->value()) + "}";
  }
  for (const auto& [key, h] : histograms_) {
    head(key, "histogram");
    out += ", \"buckets\": [";
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      if (i > 0) out += ", ";
      out += fmt_value(static_cast<double>(h->bucket(i)));
    }
    out += "], \"count\": " + fmt_value(static_cast<double>(h->count())) +
           ", \"sum_seconds\": " + fmt_value(h->sum()) + "}";
  }
  static const char* const kQuantileNames[] = {"0.5", "0.9", "0.99", "0.999"};
  static const double kQuantiles[] = {0.5, 0.9, 0.99, 0.999};
  for (const auto& [key, lh] : latencies_) {
    head(key, "summary");
    out += ", \"quantiles\": {";
    for (std::size_t i = 0; i < 4; ++i) {
      if (i > 0) out += ", ";
      out += std::string("\"") + kQuantileNames[i] +
             "\": " + fmt_value(lh->quantile(kQuantiles[i]));
    }
    out += "}, \"count\": " + fmt_value(static_cast<double>(lh->count())) +
           ", \"sum_seconds\": " + fmt_value(lh->sum_seconds()) + "}";
  }
  out += "], \"spans\": [";
  first = true;
  for (const auto& [name, site] : spans_) {
    if (!first) out += ", ";
    first = false;
    out += "{\"site\": \"" + json_escape(name) +
           "\", \"calls\": " + fmt_value(static_cast<double>(site->count())) +
           ", \"total_seconds\": " + fmt_value(site->total_seconds()) +
           ", \"max_seconds\": " + fmt_value(site->max_seconds()) + "}";
  }
  out += "]}";
  return out;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, c] : counters_) c->reset();
  for (auto& [key, g] : gauges_) g->reset();
  for (auto& [key, h] : histograms_) h->reset();
  for (auto& [key, lh] : latencies_) lh->reset();
  for (auto& [name, s] : spans_) s->reset();
}

std::string label(const std::string& key, const std::string& value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (char c : value) {
    // The exposition format escapes backslash, double-quote, and
    // line-feed inside label values; a raw '\n' would split the sample
    // line and corrupt every scrape that follows it.
    if (c == '\n') {
      escaped += "\\n";
    } else {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
  }
  return key + "=\"" + escaped + "\"";
}

}  // namespace leaf::obs
