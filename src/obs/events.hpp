// Structured drift-event telemetry (JSONL).
//
// Every operationally meaningful moment in a run — a detector firing, a
// retrain (or a LEAF retrain rejected by candidate validation), an ingest
// health-FSM transition, an OUTAGE-frozen evaluation step, a quarantine —
// is recorded as one `Event` with its shard/KPI/model/scheme/window
// context.  An `EventLog` is strictly single-writer (one per evaluation
// run or per serve shard), so event order within a log is the logical
// execution order; fleets merge shard logs with a stable (day, shard)
// sort, which is a pure function of the computation and therefore
// bit-identical at any LEAF_THREADS setting.
//
// Wall-clock readings live only in the `seconds` field, rendered as
// `"elapsed_seconds"` — the one JSONL key determinism tests mask (or drop
// wholesale via to_jsonl(/*with_timing=*/false)).
//
// Logs are snapshot-aware (save/load via leaf::io), so a SIGKILL +
// --resume serve cycle replays to a byte-identical event stream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/serializer.hpp"

namespace leaf::obs {

enum class EventKind : std::uint8_t {
  kDrift = 0,            ///< drift detector fired
  kRetrain = 1,          ///< model replaced (scheme retrain or ensemble swap)
  kRetrainRejected = 2,  ///< LEAF candidate failed validation; retrain skipped
  kOutageFreeze = 3,     ///< step skipped, detector frozen (declared OUTAGE)
  kNonFinite = 4,        ///< non-finite error suppressed
  kHealthTransition = 5, ///< ingest health FSM changed state
  kQuarantine = 6,       ///< ingest quarantined records/values (per day)
  // Supervision & self-healing (leaf::serve).
  kShardFaulted = 7,     ///< a shard's step threw; shard marked FAULTED
  kShardRecovered = 8,   ///< a FAULTED shard stepped cleanly again
  kShardQuarantined = 9, ///< retries exhausted; shard permanently skipped
  kSnapshotFallback = 10,///< restore fell back to an older generation
  kBreakerOpen = 11,     ///< retrain circuit breaker tripped OPEN
  kBreakerHalfOpen = 12, ///< cooldown elapsed; probe retrain allowed
  kBreakerClose = 13,    ///< probe succeeded; breaker back to CLOSED
  // SLO burn-rate watchdog (obs::SloWatchdog).
  kSloBurnWarning = 14,  ///< a burn rate crossed the warning fraction
  kSloBurnCritical = 15, ///< a burn rate crossed its critical threshold
  kSloRecovered = 16,    ///< all burn rates back under thresholds
  // Telemetry meta-drift watchdog (tsdb::MetaDrift).
  kTelemetryDrift = 17,  ///< a recording-rule detector fired on telemetry
};

/// Highest valid EventKind value (snapshot loaders validate against it).
inline constexpr std::uint8_t kMaxEventKind =
    static_cast<std::uint8_t>(EventKind::kTelemetryDrift);

const char* to_string(EventKind k);

struct Event {
  EventKind kind = EventKind::kDrift;
  int day = -1;    ///< study day the event refers to (-1: not day-scoped)
  int shard = -1;  ///< serve shard index (-1 outside serve)
  std::string kpi;
  std::string model;
  std::string scheme;
  std::string detail;    ///< free-form `k=v` context (p-value, rows, ...)
  double seconds = 0.0;  ///< optional wall-clock; 0 = none recorded

  bool operator==(const Event&) const = default;
};

class EventLog {
 public:
  /// Appends when obs is compiled in and runtime-enabled.  Single-writer:
  /// never share one log between concurrently stepping shards.
  void emit(Event e);

  const std::vector<Event>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

  /// One JSON object per line.  with_timing=false omits the
  /// `elapsed_seconds` key entirely (the masked form determinism tests
  /// compare).
  std::string to_jsonl(bool with_timing = true) const;

  /// Snapshot support (leaf::io).
  void save(io::Serializer& out) const;
  void load(io::Deserializer& in);

  /// Writes the JSONL rendering to `path` with the snapshot writer's
  /// tmp+rename discipline: an unwritable path or a write that faults
  /// mid-line throws io::SnapshotError and leaves neither a truncated
  /// file under `path` nor `.tmp` litter — a partial event log that
  /// parses as a shorter run is worse than no file.  Returns the byte
  /// count written.
  std::uint64_t write_jsonl(const std::string& path,
                            bool with_timing = true) const;
  static std::uint64_t write_jsonl(const std::string& path,
                                   const std::vector<Event>& events,
                                   bool with_timing);

  /// Size-capped variant (`--events-max-mb`): when the rendering exceeds
  /// `max_bytes`, it is split on line boundaries into at most three
  /// files — the newest tail under `path`, older chunks under `path.1`
  /// then `path.2`, oldest lines beyond that dropped — each written with
  /// the same tmp+rename discipline (a fault mid-rotation throws and
  /// leaves no `.tmp` litter).  `max_bytes` 0 means uncapped (plain
  /// write_jsonl; stale `.1`/`.2` files from earlier capped writes are
  /// still removed).  Returns the total bytes written across files.
  static std::uint64_t write_jsonl_rotated(const std::string& path,
                                           const std::vector<Event>& events,
                                           bool with_timing,
                                           std::uint64_t max_bytes);

  /// Merges shard logs into one deterministic stream: stable sort by
  /// (day, shard), preserving each log's insertion order within a day.
  static std::vector<Event> merge(const std::vector<const EventLog*>& logs);
  static std::string to_jsonl(const std::vector<Event>& events,
                              bool with_timing);

 private:
  std::vector<Event> events_;
};

}  // namespace leaf::obs
