// leaf::obs — SLO burn-rate watchdog for the serving plane.
//
// An `SloWatchdog` turns the serving plane's raw counters into an
// operator-facing alarm: each logical tick (a fleet step, a pump cycle —
// never a wall-clock timer) the caller feeds it one `SloSample` of
// deltas, the watchdog evaluates rolling-window burn rates against the
// declarative thresholds of an `SloSpec`, and state transitions emit
// typed supervision events (`slo-burn-warning` / `slo-burn-critical` /
// `slo-recovered`) and trip the `leaf_slo_state` gauge (0 = ok,
// 1 = warning, 2 = critical) that the chaos harness asserts on.
//
// Burn signals:
//   * deadline-miss rate — deadline sheds / predict requests
//   * shed rate          — (sheds + retries) / predict requests
//   * quarantine rate    — quarantined shards / shards
//   * nrmse-regression   — (nrmse - baseline) / baseline, against a
//                          pinned baseline (spec `nrmse-baseline=X`, or
//                          the first finite NRMSE the watchdog sees)
//   * telemetry-drift    — meta-drift rules currently in the fired state
//                          (FleetRuntime::telemetry_drift_state), window
//                          max; alarms when the telemetry plane itself
//                          reports a distribution shift
//
// Determinism: ticks are logical, samples are integer deltas of logical
// counters, and rates are ratios of their window sums, so the state
// trajectory and the emitted event stream are pure functions of the
// request/fleet schedule — bit-identical at any LEAF_THREADS.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <string>

#include "obs/events.hpp"

namespace leaf::obs {

/// Declarative SLO thresholds.  Parses from a comma-separated k=v spec
/// (the `--slo` flag / chaos-spec grammar):
///
///   window=N             rolling window in ticks (default 20)
///   deadline-miss=P      critical deadline-miss rate in [0, 1]
///   shed=P               critical shed (+retry) rate in [0, 1]
///   quarantine=P         critical quarantined-shard rate in [0, 1]
///   nrmse-regression=P   critical relative NRMSE regression (>= 0)
///   nrmse-baseline=X     pinned baseline NRMSE (default: first observed)
///   telemetry-drift=N    critical count of fired meta-drift rules (>= 1)
///   warn=F               warning fraction of each threshold (default 0.5)
///   recover=N            clean ticks required to step down (default 2)
///
/// Omitted thresholds never alarm.  Example:
///   --slo "window=8,deadline-miss=0.3,shed=0.5,warn=0.5,recover=2"
struct SloSpec {
  static constexpr double kDisabled = std::numeric_limits<double>::infinity();

  int window = 20;
  double deadline_miss = kDisabled;
  double shed = kDisabled;
  double quarantine = kDisabled;
  double nrmse_regression = kDisabled;
  double nrmse_baseline = std::numeric_limits<double>::quiet_NaN();
  double telemetry_drift = kDisabled;
  double warn_fraction = 0.5;
  int recover_ticks = 2;

  /// True when at least one threshold is set (a spec that can alarm).
  bool any() const;

  /// Throws std::invalid_argument on unknown keys, malformed numbers, or
  /// out-of-range values.  An empty spec string is a valid no-op spec.
  static SloSpec parse(const std::string& spec);

  /// Canonical spec string (round-trips through parse).
  std::string to_string() const;
};

/// One logical tick of serving-plane deltas.  All fields are counts since
/// the previous tick, except `shards`/`quarantined` (current levels) and
/// `nrmse` (current fleet average; NaN when unknown).
struct SloSample {
  std::uint64_t requests = 0;         ///< predict requests answered
  std::uint64_t deadline_misses = 0;  ///< requests shed past deadline
  std::uint64_t sheds = 0;            ///< all load-shedding responses
  std::uint64_t retries = 0;          ///< queue-full RETRY responses
  std::uint64_t shards = 0;           ///< fleet size
  std::uint64_t quarantined = 0;      ///< shards currently quarantined
  std::uint64_t telemetry_drift = 0;  ///< fired meta-drift rules (level)
  double nrmse = std::numeric_limits<double>::quiet_NaN();
};

class SloWatchdog {
 public:
  enum class State { kOk = 0, kWarning = 1, kCritical = 2 };

  explicit SloWatchdog(SloSpec spec);

  /// Feeds one tick and returns the (possibly new) state.  `day` scopes
  /// any emitted event to a study day (-1 = not day-scoped).
  State observe(const SloSample& sample, int day = -1);

  State state() const { return state_; }
  const SloSpec& spec() const { return spec_; }
  /// Typed supervision events emitted on state transitions; merge into
  /// the fleet supervision stream via
  /// FleetRuntime::attach_supervision_log.
  const EventLog& events() const { return events_; }

  /// Current rolling-window burn rates (for tests and the --slo view).
  struct Burn {
    double deadline_miss = 0.0;
    double shed = 0.0;
    double quarantine = 0.0;
    double nrmse_regression = 0.0;
    double telemetry_drift = 0.0;
  };
  Burn burn() const;

  double baseline_nrmse() const { return baseline_nrmse_; }

 private:
  SloSpec spec_;
  std::deque<SloSample> window_;
  State state_ = State::kOk;
  int ok_streak_ = 0;
  int ticks_ = 0;
  double baseline_nrmse_;
  EventLog events_;
};

const char* to_string(SloWatchdog::State s);

}  // namespace leaf::obs
