#include "obs/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace leaf::obs {

namespace {

std::atomic<int>& level_flag() {
  static std::atomic<int> level = [] {
    LogLevel parsed = LogLevel::kInfo;
    const char* env = std::getenv("LEAF_LOG_LEVEL");
    if (env != nullptr && !parse_log_level(env, parsed)) {
      std::fprintf(stderr,
                   "[leaf:warn] ignoring invalid LEAF_LOG_LEVEL='%s' "
                   "(want error|warn|info|debug)\n",
                   env);
    }
    return static_cast<int>(parsed);
  }();
  return level;
}

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}

}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(level_flag().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  level_flag().store(static_cast<int>(level), std::memory_order_relaxed);
}

bool parse_log_level(const char* s, LogLevel& out) {
  if (s == nullptr) return false;
  std::string lower;
  for (const char* p = s; *p != '\0'; ++p)
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  if (lower == "error") out = LogLevel::kError;
  else if (lower == "warn" || lower == "warning") out = LogLevel::kWarn;
  else if (lower == "info") out = LogLevel::kInfo;
  else if (lower == "debug") out = LogLevel::kDebug;
  else return false;
  return true;
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <=
         level_flag().load(std::memory_order_relaxed);
}

void logf(LogLevel level, const char* fmt, ...) {
  if (!log_enabled(level)) return;
  // One buffered write per message so concurrent shards don't interleave
  // mid-line.
  char buf[1024];
  const int head = std::snprintf(buf, sizeof buf, "[leaf:%s] ", tag(level));
  va_list args;
  va_start(args, fmt);
  int len = head + std::vsnprintf(buf + head, sizeof buf - head -
                                                  static_cast<std::size_t>(2),
                                  fmt, args);
  va_end(args);
  if (len < 0) return;
  len = std::min<int>(len, sizeof buf - 2);
  buf[len] = '\n';
  buf[len + 1] = '\0';
  std::fputs(buf, stderr);
}

}  // namespace leaf::obs
