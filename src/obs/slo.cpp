#include "obs/slo.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace leaf::obs {

namespace {

double parse_rate(const std::string& key, const std::string& value,
                  double max_value) {
  std::size_t used = 0;
  double p = 0.0;
  try {
    p = std::stod(value, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("slo: malformed value for '" + key + "'");
  }
  if (used != value.size() || !std::isfinite(p) || p < 0.0 || p > max_value)
    throw std::invalid_argument("slo: value for '" + key +
                                "' outside [0, " + std::to_string(max_value) +
                                "]");
  return p;
}

int parse_int(const std::string& key, const std::string& value, int min_value) {
  std::size_t used = 0;
  long n = 0;
  try {
    n = std::stol(value, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("slo: malformed value for '" + key + "'");
  }
  if (used != value.size() || n < min_value || n > 1000000)
    throw std::invalid_argument("slo: value for '" + key + "' out of range");
  return static_cast<int>(n);
}

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

bool SloSpec::any() const {
  return deadline_miss != kDisabled || shed != kDisabled ||
         quarantine != kDisabled || nrmse_regression != kDisabled ||
         telemetry_drift != kDisabled;
}

SloSpec SloSpec::parse(const std::string& spec) {
  SloSpec out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("slo: expected key=value, got '" + item +
                                  "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "window") {
      out.window = parse_int(key, value, 1);
    } else if (key == "deadline-miss") {
      out.deadline_miss = parse_rate(key, value, 1.0);
    } else if (key == "shed") {
      out.shed = parse_rate(key, value, 1.0);
    } else if (key == "quarantine") {
      out.quarantine = parse_rate(key, value, 1.0);
    } else if (key == "nrmse-regression") {
      out.nrmse_regression = parse_rate(key, value, 1e9);
    } else if (key == "nrmse-baseline") {
      out.nrmse_baseline = parse_rate(key, value, 1e9);
    } else if (key == "telemetry-drift") {
      out.telemetry_drift = parse_int(key, value, 1);
    } else if (key == "warn") {
      out.warn_fraction = parse_rate(key, value, 1.0);
    } else if (key == "recover") {
      out.recover_ticks = parse_int(key, value, 1);
    } else {
      throw std::invalid_argument("slo: unknown key '" + key + "'");
    }
  }
  return out;
}

std::string SloSpec::to_string() const {
  std::string out = "window=" + std::to_string(window);
  if (deadline_miss != kDisabled) out += ",deadline-miss=" + fmt(deadline_miss);
  if (shed != kDisabled) out += ",shed=" + fmt(shed);
  if (quarantine != kDisabled) out += ",quarantine=" + fmt(quarantine);
  if (nrmse_regression != kDisabled)
    out += ",nrmse-regression=" + fmt(nrmse_regression);
  if (std::isfinite(nrmse_baseline))
    out += ",nrmse-baseline=" + fmt(nrmse_baseline);
  if (telemetry_drift != kDisabled)
    out += ",telemetry-drift=" + fmt(telemetry_drift);
  out += ",warn=" + fmt(warn_fraction);
  out += ",recover=" + std::to_string(recover_ticks);
  return out;
}

const char* to_string(SloWatchdog::State s) {
  switch (s) {
    case SloWatchdog::State::kOk: return "ok";
    case SloWatchdog::State::kWarning: return "warning";
    case SloWatchdog::State::kCritical: return "critical";
  }
  return "?";
}

SloWatchdog::SloWatchdog(SloSpec spec)
    : spec_(std::move(spec)), baseline_nrmse_(spec_.nrmse_baseline) {}

SloWatchdog::Burn SloWatchdog::burn() const {
  Burn b;
  std::uint64_t requests = 0, misses = 0, sheds = 0, retries = 0;
  std::uint64_t shards = 0, quarantined = 0, drift = 0;
  double nrmse = std::numeric_limits<double>::quiet_NaN();
  for (const SloSample& s : window_) {
    requests += s.requests;
    misses += s.deadline_misses;
    sheds += s.sheds;
    retries += s.retries;
    shards = s.shards;
    quarantined = s.quarantined;
    if (s.telemetry_drift > drift) drift = s.telemetry_drift;  // window max
    if (std::isfinite(s.nrmse)) nrmse = s.nrmse;  // newest finite wins
  }
  const double answered = static_cast<double>(requests > 0 ? requests : 1);
  b.deadline_miss = static_cast<double>(misses) / answered;
  b.shed = static_cast<double>(sheds + retries) / answered;
  b.quarantine = shards == 0 ? 0.0
                             : static_cast<double>(quarantined) /
                                   static_cast<double>(shards);
  b.telemetry_drift = static_cast<double>(drift);
  if (std::isfinite(nrmse) && std::isfinite(baseline_nrmse_) &&
      baseline_nrmse_ > 0.0) {
    b.nrmse_regression = (nrmse - baseline_nrmse_) / baseline_nrmse_;
    if (b.nrmse_regression < 0.0) b.nrmse_regression = 0.0;
  }
  return b;
}

SloWatchdog::State SloWatchdog::observe(const SloSample& sample, int day) {
  ++ticks_;
  if (!std::isfinite(baseline_nrmse_) && std::isfinite(sample.nrmse))
    baseline_nrmse_ = sample.nrmse;  // pin the first observation
  window_.push_back(sample);
  while (window_.size() > static_cast<std::size_t>(spec_.window))
    window_.pop_front();

  const Burn b = burn();
  struct Signal {
    const char* name;
    double rate;
    double threshold;
  };
  const Signal signals[] = {
      {"deadline-miss", b.deadline_miss, spec_.deadline_miss},
      {"shed", b.shed, spec_.shed},
      {"quarantine", b.quarantine, spec_.quarantine},
      {"nrmse-regression", b.nrmse_regression, spec_.nrmse_regression},
      {"telemetry-drift", b.telemetry_drift, spec_.telemetry_drift},
  };
  State target = State::kOk;
  const Signal* worst = nullptr;
  double worst_ratio = 0.0;
  for (const Signal& s : signals) {
    if (s.threshold == SloSpec::kDisabled || s.threshold <= 0.0) continue;
    const double ratio = s.rate / s.threshold;
    State level = State::kOk;
    if (s.rate >= s.threshold)
      level = State::kCritical;
    else if (s.rate >= spec_.warn_fraction * s.threshold)
      level = State::kWarning;
    if (level > target || (level == target && ratio > worst_ratio)) {
      if (level != State::kOk) {
        worst = &s;
        worst_ratio = ratio;
      }
      if (level > target) target = level;
    }
  }

  const auto transition_to = [&](State next) {
    state_ = next;
    Event e;
    e.day = day;
    e.shard = -1;
    if (next == State::kOk) {
      e.kind = EventKind::kSloRecovered;
      e.detail = "window=" + std::to_string(spec_.window);
    } else {
      e.kind = next == State::kCritical ? EventKind::kSloBurnCritical
                                        : EventKind::kSloBurnWarning;
      e.detail = std::string("signal=") + (worst ? worst->name : "?") +
                 ",rate=" + fmt(worst ? worst->rate : 0.0) +
                 ",threshold=" + fmt(worst ? worst->threshold : 0.0) +
                 ",window=" + std::to_string(spec_.window);
    }
    events_.emit(std::move(e));
  };

  if (target >= state_) {
    if (target > state_) transition_to(target);
    ok_streak_ = 0;
  } else {
    // Stepping down needs `recover` consecutive ticks at the lower level,
    // so a flapping burn rate cannot strobe recovered/critical events.
    ++ok_streak_;
    if (ok_streak_ >= spec_.recover_ticks) {
      transition_to(target);
      ok_streak_ = 0;
    }
  }

  static Gauge& state_gauge =
      MetricsRegistry::global().gauge("leaf_slo_state");
  state_gauge.set(static_cast<double>(static_cast<int>(state_)));
  return state_;
}

}  // namespace leaf::obs
