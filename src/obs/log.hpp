// Tiny leveled stderr logger.
//
// Diagnostics (errors, quarantine warnings, snapshot progress, fleet
// summaries) go to stderr with a level tag, keeping stdout clean for
// program *output* (tables, CSV paths).  The threshold comes from the
// LEAF_LOG_LEVEL environment variable (error | warn | info | debug,
// default info) and can be overridden programmatically.
//
//   LEAF_LOG_ERROR("cannot write '%s'", path.c_str());
//   LEAF_LOG_WARN("ingest quarantined %lld records", n);
//   LEAF_LOG_INFO("step %llu: snapshot -> %s", step, dir.c_str());
//   LEAF_LOG_DEBUG("shard %d next_day=%d", shard, day);
#pragma once

#include <cstdarg>

namespace leaf::obs {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

/// Current threshold (messages at a level > this are dropped).
LogLevel log_level();
void set_log_level(LogLevel level);
/// Parses "error"/"warn"/"info"/"debug" (case-insensitive); returns false
/// and leaves `out` untouched on anything else.
bool parse_log_level(const char* s, LogLevel& out);

bool log_enabled(LogLevel level);

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void logf(LogLevel level, const char* fmt, ...);

}  // namespace leaf::obs

#define LEAF_LOG_ERROR(...) \
  ::leaf::obs::logf(::leaf::obs::LogLevel::kError, __VA_ARGS__)
#define LEAF_LOG_WARN(...) \
  ::leaf::obs::logf(::leaf::obs::LogLevel::kWarn, __VA_ARGS__)
#define LEAF_LOG_INFO(...) \
  ::leaf::obs::logf(::leaf::obs::LogLevel::kInfo, __VA_ARGS__)
#define LEAF_LOG_DEBUG(...) \
  ::leaf::obs::logf(::leaf::obs::LogLevel::kDebug, __VA_ARGS__)
