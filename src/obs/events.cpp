#include "obs/events.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <span>
#include <string_view>
#include <system_error>
#include <utility>

#include "common/calendar.hpp"
#include "io/snapshot.hpp"
#include "obs/metrics.hpp"

namespace leaf::obs {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kDrift: return "drift";
    case EventKind::kRetrain: return "retrain";
    case EventKind::kRetrainRejected: return "retrain_rejected";
    case EventKind::kOutageFreeze: return "outage_freeze";
    case EventKind::kNonFinite: return "nonfinite_error";
    case EventKind::kHealthTransition: return "health_transition";
    case EventKind::kQuarantine: return "quarantine";
    case EventKind::kShardFaulted: return "shard_faulted";
    case EventKind::kShardRecovered: return "shard_recovered";
    case EventKind::kShardQuarantined: return "shard_quarantined";
    case EventKind::kSnapshotFallback: return "snapshot_fallback";
    case EventKind::kBreakerOpen: return "breaker_open";
    case EventKind::kBreakerHalfOpen: return "breaker_half_open";
    case EventKind::kBreakerClose: return "breaker_close";
    case EventKind::kSloBurnWarning: return "slo-burn-warning";
    case EventKind::kSloBurnCritical: return "slo-burn-critical";
    case EventKind::kSloRecovered: return "slo-recovered";
    case EventKind::kTelemetryDrift: return "telemetry-drift";
  }
  return "?";
}

namespace {

std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) out += c;
  }
  out += '"';
  return out;
}

void append_event_jsonl(std::string& out, const Event& e, bool with_timing) {
  out += "{\"event\": \"";
  out += to_string(e.kind);
  out += '"';
  if (e.day >= 0) {
    out += ", \"day\": " + std::to_string(e.day);
    out += ", \"date\": " + json_str(cal::day_to_string(e.day));
  }
  if (e.shard >= 0) out += ", \"shard\": " + std::to_string(e.shard);
  if (!e.kpi.empty()) out += ", \"kpi\": " + json_str(e.kpi);
  if (!e.model.empty()) out += ", \"model\": " + json_str(e.model);
  if (!e.scheme.empty()) out += ", \"scheme\": " + json_str(e.scheme);
  if (!e.detail.empty()) out += ", \"detail\": " + json_str(e.detail);
  if (with_timing && e.seconds > 0.0) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.9g", e.seconds);
    out += ", \"elapsed_seconds\": ";
    out += buf;
  }
  out += "}\n";
}

}  // namespace

void EventLog::emit(Event e) {
  if constexpr (!kCompiledIn) {
    (void)e;
    return;
  }
  if (!enabled()) return;
  events_.push_back(std::move(e));
}

std::string EventLog::to_jsonl(bool with_timing) const {
  return to_jsonl(events_, with_timing);
}

std::string EventLog::to_jsonl(const std::vector<Event>& events,
                               bool with_timing) {
  std::string out;
  for (const Event& e : events) append_event_jsonl(out, e, with_timing);
  return out;
}

void EventLog::save(io::Serializer& out) const {
  out.put_u64(events_.size());
  for (const Event& e : events_) {
    out.put_u8(static_cast<std::uint8_t>(e.kind));
    out.put_i32(e.day);
    out.put_i32(e.shard);
    out.put_string(e.kpi);
    out.put_string(e.model);
    out.put_string(e.scheme);
    out.put_string(e.detail);
    out.put_f64(e.seconds);
  }
}

void EventLog::load(io::Deserializer& in) {
  // kind + day + shard + 4 length-prefixed strings + seconds.
  const std::size_t count = in.get_count(1 + 4 + 4 + 4 * 4 + 8);
  std::vector<Event> events(count);
  for (Event& e : events) {
    const std::uint8_t kind = in.get_u8();
    if (kind > kMaxEventKind)
      throw io::SnapshotError("event log: unknown event kind " +
                              std::to_string(static_cast<int>(kind)));
    e.kind = static_cast<EventKind>(kind);
    e.day = in.get_i32();
    e.shard = in.get_i32();
    e.kpi = in.get_string();
    e.model = in.get_string();
    e.scheme = in.get_string();
    e.detail = in.get_string();
    e.seconds = in.get_f64();
  }
  events_ = std::move(events);
}

std::uint64_t EventLog::write_jsonl(const std::string& path,
                                    bool with_timing) const {
  return write_jsonl(path, events_, with_timing);
}

std::uint64_t EventLog::write_jsonl(const std::string& path,
                                    const std::vector<Event>& events,
                                    bool with_timing) {
  const std::string jsonl = to_jsonl(events, with_timing);
  return io::SnapshotWriter::write_bytes(
      path, std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(jsonl.data()),
                jsonl.size()));
}

std::uint64_t EventLog::write_jsonl_rotated(const std::string& path,
                                            const std::vector<Event>& events,
                                            bool with_timing,
                                            std::uint64_t max_bytes) {
  // Stale rotated files from an earlier, larger write must not survive a
  // smaller one — they would read as history this run never produced.
  std::error_code ec;
  std::filesystem::remove(path + ".1", ec);
  std::filesystem::remove(path + ".2", ec);
  const std::string jsonl = to_jsonl(events, with_timing);
  const auto write_chunk = [](const std::string& p, std::string_view chunk) {
    return io::SnapshotWriter::write_bytes(
        p, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(chunk.data()),
               chunk.size()));
  };
  if (max_bytes == 0 || jsonl.size() <= max_bytes)
    return write_chunk(path, jsonl);

  // Pack whole lines, newest first, into up to three chunks of at most
  // max_bytes each (a single oversized line still gets a chunk to
  // itself — capping must never silently drop the newest tail).
  const std::string_view all(jsonl);
  std::vector<std::pair<std::size_t, std::size_t>> lines;  // (start, len)
  for (std::size_t pos = 0; pos < all.size();) {
    const std::size_t nl = all.find('\n', pos);
    const std::size_t line_end =
        nl == std::string_view::npos ? all.size() : nl + 1;
    lines.emplace_back(pos, line_end - pos);
    pos = line_end;
  }
  std::vector<std::string_view> chunks;
  for (std::size_t i = lines.size(); i > 0 && chunks.size() < 3;) {
    std::size_t bytes = 0;
    while (i > 0) {
      const std::size_t len = lines[i - 1].second;
      if (bytes > 0 && bytes + len > max_bytes) break;
      bytes += len;
      --i;
      if (bytes >= max_bytes) break;
    }
    chunks.push_back(all.substr(lines[i].first, bytes));
  }

  // chunks[0] is the newest tail -> `path`; older chunks -> .1, .2.
  std::uint64_t written = 0;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const std::string target =
        i == 0 ? path : path + "." + std::to_string(i);
    written += write_chunk(target, chunks[i]);
  }
  return written;
}

std::vector<Event> EventLog::merge(const std::vector<const EventLog*>& logs) {
  std::vector<Event> all;
  std::size_t total = 0;
  for (const EventLog* log : logs) total += log->size();
  all.reserve(total);
  for (const EventLog* log : logs)
    all.insert(all.end(), log->events().begin(), log->events().end());
  std::stable_sort(all.begin(), all.end(), [](const Event& a, const Event& b) {
    return a.day < b.day || (a.day == b.day && a.shard < b.shard);
  });
  return all;
}

}  // namespace leaf::obs
