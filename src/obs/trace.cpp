#include "obs/trace.hpp"

#include <cstring>

#include "obs/metrics.hpp"

namespace leaf::obs {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void put_u64_le(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

const char kHexDigits[] = "0123456789abcdef";

}  // namespace

bool trace_is_zero(const TraceId& id) {
  for (std::uint8_t b : id)
    if (b != 0) return false;
  return true;
}

std::string trace_hex(const TraceId& id) {
  std::string out(32, '0');
  for (std::size_t i = 0; i < id.size(); ++i) {
    out[2 * i] = kHexDigits[id[i] >> 4];
    out[2 * i + 1] = kHexDigits[id[i] & 0xF];
  }
  return out;
}

std::string span_hex(std::uint64_t id) {
  std::string out(16, '0');
  for (int i = 0; i < 8; ++i) {
    const std::uint8_t b = static_cast<std::uint8_t>(id >> (8 * (7 - i)));
    out[2 * i] = kHexDigits[b >> 4];
    out[2 * i + 1] = kHexDigits[b & 0xF];
  }
  return out;
}

TraceId derive_trace_id(std::uint64_t conn, std::uint64_t request_id) {
  const std::uint64_t hi = splitmix64(conn ^ 0x4c4541462e6e6574ULL);  // "LEAF.net"
  const std::uint64_t lo = splitmix64(request_id + hi);
  TraceId id{};
  put_u64_le(id.data(), hi);
  put_u64_le(id.data() + 8, lo);
  if (trace_is_zero(id)) id[0] = 1;
  return id;
}

std::uint64_t derive_span_id(const TraceId& trace, const char* name,
                             std::uint64_t parent, std::uint64_t index) {
  std::uint64_t h = fnv1a(kFnvOffset, trace.data(), trace.size());
  h = fnv1a(h, name, std::strlen(name));
  std::uint8_t tail[16];
  put_u64_le(tail, parent);
  put_u64_le(tail + 8, index);
  h = fnv1a(h, tail, sizeof tail);
  return h == 0 ? 1 : h;
}

std::uint64_t trace_hash(const TraceId& id) {
  return fnv1a(kFnvOffset, id.data(), id.size());
}

std::size_t SpanCollector::begin(std::string name, int tid) {
  TraceSpan s;
  s.name = std::move(name);
  s.tid = tid;
  s.ts_us = static_cast<std::uint64_t>(monotonic_seconds() * 1e6);
  spans_.push_back(std::move(s));
  return spans_.size() - 1;
}

void SpanCollector::end(std::size_t idx) {
  TraceSpan& s = spans_[idx];
  const auto now = static_cast<std::uint64_t>(monotonic_seconds() * 1e6);
  s.dur_us = now >= s.ts_us ? now - s.ts_us : 0;
}

void SpanCollector::annotate(std::size_t idx, std::string args) {
  spans_[idx].args = std::move(args);
}

Tracer::Tracer(std::string path, std::uint64_t sample_every)
    : path_(std::move(path)),
      sample_every_(sample_every == 0 ? 1 : sample_every) {
  f_ = std::fopen(path_.c_str(), "wb");
  if (f_ == nullptr) error_ = "cannot open trace sink '" + path_ + "'";
}

Tracer::~Tracer() { close(); }

bool Tracer::ok() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_.empty();
}

std::string Tracer::error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

bool Tracer::sampled(const TraceId& trace) const {
  return sample_every_ <= 1 || trace_hash(trace) % sample_every_ == 0;
}

void Tracer::write(const TraceSpan& span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (f_ == nullptr) return;
  std::string rec;
  rec.reserve(256);
  rec += first_ ? "[\n" : ",\n";
  first_ = false;
  rec += "{\"name\": \"" + span.name + "\", \"cat\": \"lnet\", \"ph\": \"X\"";
  rec += ", \"pid\": 1, \"tid\": " + std::to_string(span.tid);
  rec += ", \"ts\": " + std::to_string(span.ts_us);
  rec += ", \"dur\": " + std::to_string(span.dur_us);
  rec += ", \"id\": \"" + trace_hex(span.trace) + "\"";
  rec += ", \"args\": {\"trace_id\": \"" + trace_hex(span.trace) + "\"";
  rec += ", \"span_id\": \"" + span_hex(span.span_id) + "\"";
  rec += ", \"parent_span_id\": \"" + span_hex(span.parent_id) + "\"";
  if (!span.args.empty()) rec += ", " + span.args;
  rec += "}}";
  if (std::fwrite(rec.data(), 1, rec.size(), f_) != rec.size()) {
    if (error_.empty()) error_ = "write to trace sink '" + path_ + "' failed";
    std::fclose(f_);
    f_ = nullptr;
    return;
  }
  ++spans_written_;
  static Counter& spans_total =
      MetricsRegistry::global().counter("leaf_trace_spans_total");
  spans_total.inc();
}

void Tracer::close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (f_ == nullptr) return;
  const char* footer = first_ ? "[\n]\n" : "\n]\n";
  if (std::fwrite(footer, 1, std::strlen(footer), f_) != std::strlen(footer) &&
      error_.empty())
    error_ = "write to trace sink '" + path_ + "' failed";
  if (std::fclose(f_) != 0 && error_.empty())
    error_ = "close of trace sink '" + path_ + "' failed";
  f_ = nullptr;
}

}  // namespace leaf::obs
