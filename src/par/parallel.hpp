// parallel_for / parallel_map / parallel_reduce over the leaf::par pool.
//
// All helpers share the determinism contract of pool.hpp: iteration space
// is split into at most threads() contiguous chunks, per-index results are
// written to per-index slots, and reductions fold in index order — so the
// output is bit-identical at any LEAF_THREADS setting.  Callers that need
// randomness per task must derive it from the task index
// (Rng::substream(i)), never from a shared generator.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "par/pool.hpp"

namespace leaf::par {

/// Runs fn(begin, end) over contiguous ranges covering [0, n).  The chunk
/// *boundaries* depend on the thread count, so fn must give each index a
/// result independent of its neighbours; per-chunk scratch buffers are
/// fine as long as they are (re)initialized deterministically per index.
template <typename F>
void parallel_for_chunks(std::size_t n, F&& fn) {
  if (n == 0) return;
  const int t = threads();
  if (t <= 1 || n == 1 || ThreadPool::inside_parallel_region()) {
    fn(std::size_t{0}, n);
    return;
  }
  const std::size_t n_chunks = std::min<std::size_t>(n, static_cast<std::size_t>(t));
  const std::function<void(std::size_t)> chunk = [&](std::size_t c) {
    fn(n * c / n_chunks, n * (c + 1) / n_chunks);
  };
  pool().run(n_chunks, chunk);
}

/// Runs fn(i) for every i in [0, n), statically chunked over the pool.
template <typename F>
void parallel_for(std::size_t n, F&& fn) {
  parallel_for_chunks(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

/// Returns {fn(0), fn(1), ..., fn(n-1)} in index order.  The element type
/// must be default-constructible and movable.
template <typename F>
auto parallel_map(std::size_t n, F&& fn) {
  using T = std::decay_t<std::invoke_result_t<F&, std::size_t>>;
  std::vector<T> out(n);
  parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// Ordered reduction: maps every index in parallel, then folds
/// combine(acc, value_i) serially in index order.  The fold order is a
/// pure function of n — never of the thread count — which keeps floating
/// point reductions bit-identical across LEAF_THREADS settings.
template <typename T, typename M, typename C>
T parallel_reduce(std::size_t n, T init, M&& map_fn, C&& combine) {
  auto values = parallel_map(n, std::forward<M>(map_fn));
  T acc = std::move(init);
  for (auto& v : values) acc = combine(std::move(acc), std::move(v));
  return acc;
}

}  // namespace leaf::par
