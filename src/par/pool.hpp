// Deterministic bounded thread pool — the execution layer behind every
// parallel hot path in the repository (leaf::par).
//
// Design contract: **parallelism must never change numeric output.**  Work
// is partitioned by index, never by thread; any randomness a task needs
// comes from a counter-based Rng sub-stream derived from the task index
// (`Rng::substream`), and reductions combine per-index results in index
// order.  Under that discipline every parallel site produces bit-identical
// output at any thread count, and `LEAF_THREADS` is a pure throughput knob:
//
//   LEAF_THREADS=1   exact serial semantics (no pool threads at all);
//   LEAF_THREADS=N   bounded pool of N-1 workers plus the calling thread;
//   unset / invalid  hardware_concurrency().
//
// The pool runs one job at a time.  Chunks of the active job are claimed
// dynamically (an atomic cursor) by the workers *and* the submitting
// thread, so assignment of chunk -> thread is scheduling-dependent — but
// chunk *contents* are a pure function of (n, chunk index), which is what
// determinism rests on.  Nested submissions (a task that itself calls a
// parallel_* helper) execute inline on the submitting thread instead of
// deadlocking on the occupied pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace leaf::par {

/// Resolved parallelism width: LEAF_THREADS if set and valid, otherwise
/// hardware_concurrency() (minimum 1).  1 means strictly serial.
int threads();

/// Overrides the thread count at runtime (the determinism tests switch
/// between 1 and 4 within one process).  n <= 0 re-reads the environment.
/// Must not be called while a parallel region is executing.
void set_threads(int n);

class ThreadPool {
 public:
  /// Spawns `workers` helper threads (the submitting thread is worker
  /// number `workers`, so total parallelism is workers + 1).
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Executes fn(c) for every c in [0, n_chunks), distributing chunks over
  /// the workers and the calling thread.  Blocks until all chunks finished.
  /// The first exception thrown by any chunk is rethrown on the caller
  /// (remaining chunks still run, so the pool is left quiescent).
  void run(std::size_t n_chunks, const std::function<void(std::size_t)>& fn);

  /// True while the current thread is executing inside a parallel region
  /// (pool worker or submitting thread).  parallel_* helpers consult this
  /// to run nested regions inline.
  static bool inside_parallel_region();

 private:
  struct Job;
  void worker_loop();
  static void execute_chunks(Job& job);

  std::vector<std::thread> threads_;
  std::mutex mu_;                    // guards job_, seq_, stop_, attached
  std::condition_variable cv_work_;  // workers wait for a new job
  std::condition_variable cv_done_;  // submitter waits for detachment
  Job* job_ = nullptr;
  std::uint64_t seq_ = 0;
  bool stop_ = false;
  std::mutex submit_mu_;  // one job at a time across submitting threads
};

/// Process-wide pool sized by threads(); created lazily on first use.
ThreadPool& pool();

}  // namespace leaf::par
