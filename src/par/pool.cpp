#include "par/pool.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

namespace leaf::par {

namespace {

thread_local bool t_inside_parallel = false;

int resolve_env_threads() {
  const char* env = std::getenv("LEAF_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<int>(v);
    }
    std::fprintf(stderr,
                 "leaf::par: ignoring invalid LEAF_THREADS=%s (want 1..1024); "
                 "using hardware concurrency\n",
                 env);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

// Global pool state.  `g_mu` guards creation/replacement only; run() has
// its own synchronization.
std::mutex g_mu;
std::unique_ptr<ThreadPool> g_pool;
int g_threads = 0;  // 0 = not yet resolved

int threads_locked() {
  if (g_threads == 0) g_threads = resolve_env_threads();
  return g_threads;
}

}  // namespace

int threads() {
  std::lock_guard<std::mutex> lk(g_mu);
  return threads_locked();
}

void set_threads(int n) {
  std::lock_guard<std::mutex> lk(g_mu);
  g_pool.reset();  // joins any existing workers
  g_threads = n > 0 ? n : resolve_env_threads();
}

ThreadPool& pool() {
  std::lock_guard<std::mutex> lk(g_mu);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(threads_locked() - 1);
  return *g_pool;
}

struct ThreadPool::Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n_chunks = 0;
  std::atomic<std::size_t> next{0};  // chunk cursor
  int attached = 0;                  // workers currently executing (mu_)
  std::uint64_t seq = 0;
  std::exception_ptr error;  // first failure (err_mu)
  std::mutex err_mu;
};

ThreadPool::ThreadPool(int workers) {
  threads_.reserve(static_cast<std::size_t>(workers > 0 ? workers : 0));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

bool ThreadPool::inside_parallel_region() { return t_inside_parallel; }

void ThreadPool::execute_chunks(Job& job) {
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.n_chunks) return;
    try {
      (*job.fn)(c);
    } catch (...) {
      std::lock_guard<std::mutex> g(job.err_mu);
      if (!job.error) job.error = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop() {
  t_inside_parallel = true;
  std::uint64_t last_seq = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_work_.wait(lk, [&] {
      return stop_ || (job_ != nullptr && job_->seq != last_seq);
    });
    if (stop_) return;
    Job* job = job_;
    last_seq = job->seq;
    ++job->attached;  // pins the job: the submitter waits for detachment
    lk.unlock();
    execute_chunks(*job);
    lk.lock();
    --job->attached;
    if (job->attached == 0) cv_done_.notify_all();
  }
}

void ThreadPool::run(std::size_t n_chunks,
                     const std::function<void(std::size_t)>& fn) {
  if (n_chunks == 0) return;
  if (threads_.empty() || n_chunks == 1 || t_inside_parallel) {
    // Serial / nested path: exceptions propagate naturally.
    for (std::size_t c = 0; c < n_chunks; ++c) fn(c);
    return;
  }

  std::lock_guard<std::mutex> submit(submit_mu_);
  Job job;
  job.fn = &fn;
  job.n_chunks = n_chunks;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job.seq = ++seq_;
    job_ = &job;
  }
  cv_work_.notify_all();

  t_inside_parallel = true;  // nested parallel_* calls from chunks inline
  execute_chunks(job);
  t_inside_parallel = false;

  {
    // All chunks are claimed (the cursor ran out above); wait until every
    // worker that attached has finished executing its claimed chunks, then
    // retract the job under the same lock so a late-waking worker can
    // never observe a dangling pointer.
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return job.attached == 0; });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace leaf::par
