// Correlation-based feature grouping — step two of LEAF's explainer
// (§4.2): "we group features by their correlations.  The grouping stops
// when the feature has no importance value.  Lastly, we choose the most
// representative (i.e., highest importance score) feature from each
// group."
//
// Greedy procedure: repeatedly take the highest-importance not-yet-grouped
// feature as a new group's representative and absorb every ungrouped
// feature whose |Pearson correlation| with it exceeds the threshold.
#pragma once

#include <span>
#include <vector>

#include "common/matrix.hpp"

namespace leaf::explain {

struct FeatureGroup {
  int representative = -1;     ///< column index of the group's anchor
  double importance = 0.0;     ///< the representative's importance score
  std::vector<int> members;    ///< includes the representative
};

struct GroupingConfig {
  double corr_threshold = 0.7;
  /// Stop after this many groups (the paper evaluates 1, 3, and 5 groups);
  /// <= 0 means unlimited.
  int max_groups = 0;
  /// Features with importance <= this never found a group ("the grouping
  /// stops when the feature has no importance value").
  double min_importance = 0.0;
  /// Correlations are estimated on at most this many rows.
  std::size_t max_rows = 4000;
};

/// Groups the columns of X.  `importance` must have X.cols() entries.
/// Groups come out ordered by descending representative importance.
std::vector<FeatureGroup> group_features(const Matrix& X,
                                         std::span<const double> importance,
                                         const GroupingConfig& cfg = {});

}  // namespace leaf::explain
