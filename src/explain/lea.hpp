// Local Error Approximation (LEA) and its two visualizations, LEAplot and
// LEAgram — the heart of LEAF's explainer (§4.2).
//
// LEA decomposes a model's error over the value range of a representative
// feature: samples are assigned to N quantile bins of the feature and a
// chosen error metric (NRMSE by default) is computed inside each bin.
// The resulting error vector E_L localizes *where* in feature space the
// model is under-trained, which both informs operators (LEAplot) and
// drives the mitigator's forgetting / over-sampling weights (§4.3).
//
// LEAgram extends LEA with time: the test set is split by date, samples
// are placed into (date, feature-bin) cells, and the *signed* Normalized
// Error is shown so over-estimation (unnecessary infrastructure spend)
// and under-estimation (user dissatisfaction) are distinguishable.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "data/features.hpp"
#include "models/regressor.hpp"

namespace leaf::explain {

/// Quantile bin edges (interior, ascending, deduplicated) of one feature.
/// Computing these on a reference set and reusing them across data subsets
/// puts all LEAplot series on a common x-axis.
std::vector<double> lea_bin_edges(std::span<const double> feature_values,
                                  int bins);

/// Index of the bin containing `value` for the given interior edges
/// (edges.size() + 1 total bins).
std::size_t lea_bin_of(double value, std::span<const double> edges);

/// The LEA error decomposition of one (model output, data subset) pair.
struct LeaResult {
  int feature = -1;                 ///< inspected column
  std::vector<double> edges;        ///< interior bin edges
  std::vector<double> error;        ///< per-bin NRMSE (E_L); 0 for empty bins
  std::vector<std::size_t> count;   ///< samples per bin

  std::size_t num_bins() const { return error.size(); }
  /// Representative x position of a bin (midpoint of its edge interval;
  /// outer bins use their single bounding edge).
  double bin_center(std::size_t b) const;
};

/// Computes LEA for pre-computed predictions.
LeaResult compute_lea(std::span<const double> pred,
                      std::span<const double> truth,
                      std::span<const double> feature_values, int feature,
                      double norm_range, std::span<const double> edges);

/// Convenience: runs the model over `set` and decomposes over column
/// `feature`.  When `edges` is empty they are derived from this set.
LeaResult compute_lea(const models::Regressor& model,
                      const data::SupervisedSet& set, int feature, int bins,
                      double norm_range, std::span<const double> edges = {});

/// LEAplot: LEA of several named data subsets over a shared x-axis
/// (paper Figs. 4 and 8 plot train / full-test / drift-window subsets).
struct LeaPlot {
  int feature = -1;
  std::string feature_name;
  std::vector<double> edges;
  std::vector<std::pair<std::string, LeaResult>> series;

  /// ASCII rendering (bin center vs error, one glyph per series).
  std::string render(int width = 100, int height = 14) const;
  /// CSV rows: bin_center, then one error column per series.
  std::vector<std::vector<std::string>> csv_rows() const;
};

LeaPlot build_leaplot(
    const models::Regressor& model,
    const std::vector<std::pair<std::string, const data::SupervisedSet*>>& subsets,
    int feature, const std::string& feature_name, int bins, double norm_range);

/// LEAgram: date x feature-bin matrix of mean signed Normalized Error
/// (paper Fig. 5).  Positive cells = overestimation, negative =
/// underestimation; NaN = no samples in the cell.
struct LeaGram {
  int feature = -1;
  std::string feature_name;
  std::vector<double> edges;
  std::vector<int> days;  ///< distinct target days, ascending (rows of ne)
  Matrix ne;              ///< days x bins, NaN for empty cells

  /// Mean |NE| over non-empty cells — a scalar summary used to compare
  /// before/after mitigation (the paper quotes a 32.68% reduction).
  double mean_abs_ne() const;
  /// ASCII heat map (time on x, feature bins on y, diverging ramp).
  std::string render() const;
};

LeaGram build_leagram(const models::Regressor& model,
                      const data::SupervisedSet& test, int feature,
                      const std::string& feature_name, int bins,
                      double norm_range);

}  // namespace leaf::explain
