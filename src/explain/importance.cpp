#include "explain/importance.hpp"

#include <algorithm>
#include <numeric>

#include "common/metrics.hpp"

namespace leaf::explain {

std::vector<double> permutation_importance(const models::Regressor& model,
                                           const Matrix& X,
                                           std::span<const double> y,
                                           double norm_range, Rng& rng,
                                           const ImportanceConfig& cfg) {
  const std::size_t n_all = X.rows();
  const std::size_t k = X.cols();
  std::vector<double> scores(k, 0.0);
  if (n_all == 0) return scores;

  // Optional row subsample for tractability.
  Matrix Xs;
  std::vector<double> ys;
  const Matrix* Xp = &X;
  std::span<const double> yp = y;
  if (n_all > cfg.max_rows) {
    const auto rows = rng.sample_without_replacement(n_all, cfg.max_rows);
    Xs = X.gather_rows(rows);
    ys.reserve(rows.size());
    for (std::size_t r : rows) ys.push_back(y[r]);
    Xp = &Xs;
    yp = ys;
  }
  const std::size_t n = Xp->rows();

  const std::vector<double> base_pred = model.predict(*Xp);
  const double base_err = metrics::nrmse(base_pred, yp, norm_range);

  // Permute one column at a time in a scratch copy of the matrix.
  Matrix scratch = *Xp;
  std::vector<double> saved(n);
  std::vector<std::size_t> perm(n);
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t r = 0; r < n; ++r) saved[r] = scratch(r, c);
    double acc = 0.0;
    for (int rep = 0; rep < cfg.repeats; ++rep) {
      std::iota(perm.begin(), perm.end(), std::size_t{0});
      rng.shuffle(perm);
      for (std::size_t r = 0; r < n; ++r) scratch(r, c) = saved[perm[r]];
      const std::vector<double> pred = model.predict(scratch);
      acc += metrics::nrmse(pred, yp, norm_range) - base_err;
    }
    scores[c] = acc / static_cast<double>(cfg.repeats);
    for (std::size_t r = 0; r < n; ++r) scratch(r, c) = saved[r];
  }
  return scores;
}

std::vector<std::size_t> importance_ranking(std::span<const double> scores) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });
  return order;
}

}  // namespace leaf::explain
