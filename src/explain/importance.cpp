#include "explain/importance.hpp"

#include <algorithm>
#include <numeric>

#include "common/metrics.hpp"
#include "par/parallel.hpp"

namespace leaf::explain {

std::vector<double> permutation_importance(const models::Regressor& model,
                                           const Matrix& X,
                                           std::span<const double> y,
                                           double norm_range, Rng& rng,
                                           const ImportanceConfig& cfg) {
  const std::size_t n_all = X.rows();
  const std::size_t k = X.cols();
  std::vector<double> scores(k, 0.0);
  if (n_all == 0 || cfg.repeats <= 0) return scores;

  // Optional row subsample for tractability.
  Matrix Xs;
  std::vector<double> ys;
  const Matrix* Xp = &X;
  std::span<const double> yp = y;
  if (n_all > cfg.max_rows) {
    const auto rows = rng.sample_without_replacement(n_all, cfg.max_rows);
    Xs = X.gather_rows(rows);
    ys.reserve(rows.size());
    for (std::size_t r : rows) ys.push_back(y[r]);
    Xp = &Xs;
    yp = ys;
  }
  const std::size_t n = Xp->rows();

  const std::vector<double> base_pred = model.predict(*Xp);
  const double base_err = metrics::nrmse(base_pred, yp, norm_range);

  // One (column, repeat) pair per task; task (c, rep) permutes column c
  // with the counter-based sub-stream root.substream(c * repeats + rep),
  // so the sweep is embarrassingly parallel yet bit-identical at any
  // thread count.  The caller's generator advances exactly once (the
  // fork), as a stable part of the function's contract.
  const Rng root = rng.fork(0x1A9F);
  const std::size_t reps = static_cast<std::size_t>(cfg.repeats);
  const std::size_t n_tasks = k * reps;
  std::vector<double> deltas(n_tasks);
  par::parallel_for_chunks(n_tasks, [&](std::size_t begin, std::size_t end) {
    // Per-chunk scratch: a private copy of the evaluation matrix plus
    // permutation / prediction buffers, reused across the chunk's tasks
    // (the column under permutation is restored after each task).
    Matrix scratch = *Xp;
    std::vector<double> saved(n);
    std::vector<double> pred(n);
    std::vector<std::size_t> perm(n);
    for (std::size_t task = begin; task < end; ++task) {
      const std::size_t c = task / reps;
      Rng task_rng = root.substream(task);
      for (std::size_t r = 0; r < n; ++r) saved[r] = scratch(r, c);
      std::iota(perm.begin(), perm.end(), std::size_t{0});
      task_rng.shuffle(perm);
      for (std::size_t r = 0; r < n; ++r) scratch(r, c) = saved[perm[r]];
      model.predict_into(scratch, pred);
      deltas[task] = metrics::nrmse(pred, yp, norm_range) - base_err;
      for (std::size_t r = 0; r < n; ++r) scratch(r, c) = saved[r];
    }
  });

  // Ordered reduction: repeats fold in repeat order per column.
  for (std::size_t c = 0; c < k; ++c) {
    double acc = 0.0;
    for (std::size_t rep = 0; rep < reps; ++rep) acc += deltas[c * reps + rep];
    scores[c] = acc / static_cast<double>(reps);
  }
  return scores;
}

std::vector<std::size_t> importance_ranking(std::span<const double> scores) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });
  return order;
}

}  // namespace leaf::explain
