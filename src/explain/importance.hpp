// Permutation-based feature importance (Breiman 2001) — step one of
// LEAF's explainer (§4.2): "we first rank features by permutation-based
// feature importance (i.e., sensitivity score to permutation)".
//
// The score of feature j is the increase in NRMSE when column j of the
// evaluation set is randomly permuted (breaking its relationship with the
// target while preserving its marginal distribution), averaged over
// `repeats` permutations.  Model-agnostic: only predictions are used.
#pragma once

#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "models/regressor.hpp"

namespace leaf::explain {

struct ImportanceConfig {
  int repeats = 3;
  /// Evaluation rows are subsampled to at most this many for speed (the
  /// permutation loop is O(rows * features * repeats) predictions).
  std::size_t max_rows = 2000;
};

/// Per-feature importance scores (same order as X's columns).  Scores are
/// NRMSE deltas: <= 0 means the feature carries no measurable signal.
std::vector<double> permutation_importance(const models::Regressor& model,
                                           const Matrix& X,
                                           std::span<const double> y,
                                           double norm_range, Rng& rng,
                                           const ImportanceConfig& cfg = {});

/// Column indices sorted by descending importance.
std::vector<std::size_t> importance_ranking(std::span<const double> scores);

}  // namespace leaf::explain
