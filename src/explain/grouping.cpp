#include "explain/grouping.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/stats.hpp"

namespace leaf::explain {

std::vector<FeatureGroup> group_features(const Matrix& X,
                                         std::span<const double> importance,
                                         const GroupingConfig& cfg) {
  const std::size_t k = X.cols();
  std::vector<FeatureGroup> groups;
  if (k == 0 || importance.size() != k) return groups;

  // Row subsample (deterministic stride) for correlation estimation.
  const std::size_t n = X.rows();
  const std::size_t stride =
      n > cfg.max_rows ? (n + cfg.max_rows - 1) / cfg.max_rows : 1;
  std::vector<std::vector<double>> cols(k);
  for (std::size_t c = 0; c < k; ++c) {
    auto& col = cols[c];
    col.reserve(n / stride + 1);
    for (std::size_t r = 0; r < n; r += stride) col.push_back(X(r, c));
  }

  std::vector<std::size_t> order(k);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return importance[a] > importance[b];
  });

  std::vector<bool> grouped(k, false);
  for (std::size_t oi = 0; oi < k; ++oi) {
    const std::size_t rep = order[oi];
    if (grouped[rep]) continue;
    if (importance[rep] <= cfg.min_importance) break;  // no signal left
    if (cfg.max_groups > 0 &&
        static_cast<int>(groups.size()) >= cfg.max_groups)
      break;

    FeatureGroup g;
    g.representative = static_cast<int>(rep);
    g.importance = importance[rep];
    g.members.push_back(static_cast<int>(rep));
    grouped[rep] = true;

    for (std::size_t c = 0; c < k; ++c) {
      if (grouped[c]) continue;
      const double corr = stats::pearson(cols[rep], cols[c]);
      if (std::abs(corr) >= cfg.corr_threshold) {
        g.members.push_back(static_cast<int>(c));
        grouped[c] = true;
      }
    }
    groups.push_back(std::move(g));
  }
  return groups;
}

}  // namespace leaf::explain
