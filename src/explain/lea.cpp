#include "explain/lea.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>

#include "common/ascii_plot.hpp"
#include "common/csv.hpp"
#include "common/metrics.hpp"
#include "common/stats.hpp"

namespace leaf::explain {

std::vector<double> lea_bin_edges(std::span<const double> feature_values,
                                  int bins) {
  assert(bins >= 1);
  std::vector<double> edges = stats::quantile_edges(feature_values,
                                                    static_cast<std::size_t>(bins));
  // Deduplicate ties so bins are well-defined.
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

std::size_t lea_bin_of(double value, std::span<const double> edges) {
  // A value equal to an edge belongs to the bin on its left, matching the
  // decision trees' `x <= threshold` split convention.
  const auto it = std::lower_bound(edges.begin(), edges.end(), value);
  return static_cast<std::size_t>(it - edges.begin());
}

double LeaResult::bin_center(std::size_t b) const {
  if (edges.empty()) return 0.0;
  if (b == 0) return edges.front();
  if (b >= edges.size()) return edges.back();
  return 0.5 * (edges[b - 1] + edges[b]);
}

LeaResult compute_lea(std::span<const double> pred,
                      std::span<const double> truth,
                      std::span<const double> feature_values, int feature,
                      double norm_range, std::span<const double> edges) {
  assert(pred.size() == truth.size());
  assert(pred.size() == feature_values.size());
  assert(norm_range > 0.0);

  LeaResult out;
  out.feature = feature;
  out.edges.assign(edges.begin(), edges.end());
  const std::size_t nb = edges.size() + 1;
  out.error.assign(nb, 0.0);
  out.count.assign(nb, 0);

  // Accumulate squared errors per bin, then convert to per-bin NRMSE.
  std::vector<double> sq(nb, 0.0);
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const std::size_t b = lea_bin_of(feature_values[i], edges);
    const double d = pred[i] - truth[i];
    sq[b] += d * d;
    ++out.count[b];
  }
  for (std::size_t b = 0; b < nb; ++b) {
    if (out.count[b] == 0) continue;
    out.error[b] =
        std::sqrt(sq[b] / static_cast<double>(out.count[b])) / norm_range;
  }
  return out;
}

LeaResult compute_lea(const models::Regressor& model,
                      const data::SupervisedSet& set, int feature, int bins,
                      double norm_range, std::span<const double> edges) {
  const std::span<const double> fv =
      set.X.col_view(static_cast<std::size_t>(feature));
  std::vector<double> own_edges;
  if (edges.empty()) {
    own_edges = lea_bin_edges(fv, bins);
    edges = own_edges;
  }
  const std::vector<double> pred = model.predict(set.X);
  return compute_lea(pred, set.y, fv, feature, norm_range, edges);
}

std::string LeaPlot::render(int width, int height) const {
  // One line series per subset, sampled on the shared bin axis.
  std::vector<std::pair<std::string, std::vector<double>>> chart;
  for (const auto& [name, lea] : series) chart.emplace_back(name, lea.error);
  plot::LineChartOptions opts;
  opts.width = width;
  opts.height = height;
  opts.title = "LEAplot: per-bin NRMSE vs quantile bins of '" + feature_name + "'";
  opts.x_label = "quantile bin of " + feature_name +
                 (edges.empty() ? ""
                                : "  [" + fmt(edges.front()) + " .. " +
                                      fmt(edges.back()) + "]");
  opts.y_label = "local NRMSE";
  return plot::line_chart(chart, opts);
}

std::vector<std::vector<std::string>> LeaPlot::csv_rows() const {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header{"bin_center"};
  for (const auto& [name, lea] : series) {
    header.push_back(name + "_nrmse");
    header.push_back(name + "_count");
  }
  rows.push_back(std::move(header));
  if (series.empty()) return rows;
  const std::size_t nb = series.front().second.num_bins();
  for (std::size_t b = 0; b < nb; ++b) {
    std::vector<std::string> row{fmt(series.front().second.bin_center(b))};
    for (const auto& [name, lea] : series) {
      row.push_back(fmt(b < lea.error.size() ? lea.error[b] : 0.0));
      row.push_back(std::to_string(b < lea.count.size() ? lea.count[b] : 0));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

LeaPlot build_leaplot(
    const models::Regressor& model,
    const std::vector<std::pair<std::string, const data::SupervisedSet*>>& subsets,
    int feature, const std::string& feature_name, int bins,
    double norm_range) {
  LeaPlot out;
  out.feature = feature;
  out.feature_name = feature_name;

  // Shared x-axis: quantile edges over the union of all subsets.
  std::vector<double> all_values;
  for (const auto& [name, set] : subsets) {
    const auto col = set->X.col_view(static_cast<std::size_t>(feature));
    all_values.insert(all_values.end(), col.begin(), col.end());
  }
  out.edges = lea_bin_edges(all_values, bins);

  for (const auto& [name, set] : subsets) {
    out.series.emplace_back(
        name, compute_lea(model, *set, feature, bins, norm_range, out.edges));
  }
  return out;
}

double LeaGram::mean_abs_ne() const {
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t r = 0; r < ne.rows(); ++r) {
    for (std::size_t c = 0; c < ne.cols(); ++c) {
      const double v = ne(r, c);
      if (!std::isfinite(v)) continue;
      acc += std::abs(v);
      ++n;
    }
  }
  return n > 0 ? acc / static_cast<double>(n) : 0.0;
}

std::string LeaGram::render() const {
  plot::HeatMapOptions opts;
  opts.title = "LEAgram: signed Normalized Error, '" + feature_name +
               "' bins (y, low at top) vs time (x)";
  opts.diverging = true;
  opts.x_label = "target date (ascending)";
  opts.y_label = "quantile bin of " + feature_name;
  // Transpose conceptually: our matrix is days x bins, the paper draws
  // time on x.  heat_map takes rows as y, so feed bins x days.
  Matrix t(ne.cols(), ne.rows(), std::numeric_limits<double>::quiet_NaN());
  for (std::size_t r = 0; r < ne.rows(); ++r)
    for (std::size_t c = 0; c < ne.cols(); ++c) t(c, r) = ne(r, c);
  return plot::heat_map(t, opts);
}

LeaGram build_leagram(const models::Regressor& model,
                      const data::SupervisedSet& test, int feature,
                      const std::string& feature_name, int bins,
                      double norm_range) {
  LeaGram out;
  out.feature = feature;
  out.feature_name = feature_name;

  const std::span<const double> fv =
      test.X.col_view(static_cast<std::size_t>(feature));
  out.edges = lea_bin_edges(fv, bins);
  const std::size_t nb = out.edges.size() + 1;

  // Distinct target days, ascending.
  std::map<int, std::size_t> day_row;
  for (int d : test.target_day) day_row.emplace(d, 0);
  out.days.reserve(day_row.size());
  for (auto& [d, row] : day_row) {
    row = out.days.size();
    out.days.push_back(d);
  }

  const std::vector<double> pred = model.predict(test.X);
  Matrix sum(out.days.size(), nb, 0.0);
  Matrix cnt(out.days.size(), nb, 0.0);
  for (std::size_t i = 0; i < test.size(); ++i) {
    const std::size_t r = day_row[test.target_day[i]];
    const std::size_t b = lea_bin_of(fv[i], out.edges);
    sum(r, b) += metrics::normalized_error(pred[i], test.y[i], norm_range);
    cnt(r, b) += 1.0;
  }
  out.ne = Matrix(out.days.size(), nb,
                  std::numeric_limits<double>::quiet_NaN());
  for (std::size_t r = 0; r < out.days.size(); ++r)
    for (std::size_t b = 0; b < nb; ++b)
      if (cnt(r, b) > 0.0) out.ne(r, b) = sum(r, b) / cnt(r, b);
  return out;
}

}  // namespace leaf::explain
