#include "drift/kswin.hpp"

#include <cassert>
#include <cmath>
#include <vector>

#include "common/stats.hpp"

namespace leaf::drift {

Kswin::Kswin(KswinConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  assert(cfg_.stat_size > 1);
  assert(cfg_.window_size >= 2 * cfg_.stat_size);
  assert(cfg_.alpha > 0.0 && cfg_.alpha < 1.0);
}

bool Kswin::update(double value) {
  static DetectorCounters ctrs("KSWIN");
  ctrs.updates.inc();
  // Dirty telemetry guard: a NaN/Inf error value would contaminate the KS
  // window for `window_size` subsequent steps; drop it at the door.
  if (!std::isfinite(value)) return false;
  window_.push_back(value);
  if (static_cast<int>(window_.size()) > cfg_.window_size)
    window_.pop_front();
  if (static_cast<int>(window_.size()) < cfg_.window_size) return false;

  const std::size_t r = static_cast<std::size_t>(cfg_.stat_size);
  const std::size_t older = window_.size() - r;

  // Recent slice: the last r values.
  std::vector<double> recent(window_.end() - static_cast<std::ptrdiff_t>(r),
                             window_.end());
  // Reference: r values sampled uniformly from the older portion.
  std::vector<double> reference;
  reference.reserve(r);
  for (std::size_t idx : rng_.sample_without_replacement(older, r))
    reference.push_back(window_[idx]);

  last_p_ = stats::ks_p_value(reference, recent);
  if (last_p_ < cfg_.alpha) {
    // Keep only the new concept's samples.
    window_.erase(window_.begin(),
                  window_.end() - static_cast<std::ptrdiff_t>(r));
    ctrs.firings.inc();
    return true;
  }
  return false;
}

void Kswin::reset() {
  window_.clear();
  last_p_ = 1.0;
  rng_ = Rng(cfg_.seed);
}

std::unique_ptr<DriftDetector> Kswin::clone_fresh() const {
  return std::make_unique<Kswin>(cfg_);
}

void Kswin::save_state(io::Serializer& out) const {
  out.put_i32(cfg_.window_size);
  out.put_i32(cfg_.stat_size);
  out.put_f64(cfg_.alpha);
  out.put_u64(cfg_.seed);
  io::write(out, rng_);
  std::vector<double> window(window_.begin(), window_.end());
  out.put_doubles(window);
  out.put_f64(last_p_);
}

void Kswin::load_state(io::Deserializer& in) {
  KswinConfig saved;
  saved.window_size = in.get_i32();
  saved.stat_size = in.get_i32();
  saved.alpha = in.get_f64();
  saved.seed = in.get_u64();
  if (saved.window_size != cfg_.window_size ||
      saved.stat_size != cfg_.stat_size || saved.alpha != cfg_.alpha ||
      saved.seed != cfg_.seed)
    throw io::SnapshotError(
        "KSWIN configuration mismatch between snapshot and detector");
  Rng rng(cfg_.seed);
  io::read_rng(in, rng);
  const std::vector<double> window = in.get_doubles();
  const double last_p = in.get_f64();
  if (window.size() > static_cast<std::size_t>(cfg_.window_size))
    throw io::SnapshotError("KSWIN window larger than configured size");
  rng_ = rng;
  window_.assign(window.begin(), window.end());
  last_p_ = last_p;
}

}  // namespace leaf::drift
