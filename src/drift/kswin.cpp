#include "drift/kswin.hpp"

#include <cassert>
#include <cmath>
#include <vector>

#include "common/stats.hpp"

namespace leaf::drift {

Kswin::Kswin(KswinConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  assert(cfg_.stat_size > 1);
  assert(cfg_.window_size >= 2 * cfg_.stat_size);
  assert(cfg_.alpha > 0.0 && cfg_.alpha < 1.0);
}

bool Kswin::update(double value) {
  // Dirty telemetry guard: a NaN/Inf error value would contaminate the KS
  // window for `window_size` subsequent steps; drop it at the door.
  if (!std::isfinite(value)) return false;
  window_.push_back(value);
  if (static_cast<int>(window_.size()) > cfg_.window_size)
    window_.pop_front();
  if (static_cast<int>(window_.size()) < cfg_.window_size) return false;

  const std::size_t r = static_cast<std::size_t>(cfg_.stat_size);
  const std::size_t older = window_.size() - r;

  // Recent slice: the last r values.
  std::vector<double> recent(window_.end() - static_cast<std::ptrdiff_t>(r),
                             window_.end());
  // Reference: r values sampled uniformly from the older portion.
  std::vector<double> reference;
  reference.reserve(r);
  for (std::size_t idx : rng_.sample_without_replacement(older, r))
    reference.push_back(window_[idx]);

  last_p_ = stats::ks_p_value(reference, recent);
  if (last_p_ < cfg_.alpha) {
    // Keep only the new concept's samples.
    window_.erase(window_.begin(),
                  window_.end() - static_cast<std::ptrdiff_t>(r));
    return true;
  }
  return false;
}

void Kswin::reset() {
  window_.clear();
  last_p_ = 1.0;
  rng_ = Rng(cfg_.seed);
}

std::unique_ptr<DriftDetector> Kswin::clone_fresh() const {
  return std::make_unique<Kswin>(cfg_);
}

}  // namespace leaf::drift
