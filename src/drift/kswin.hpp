// Kolmogorov–Smirnov Windowing (KSWIN) drift detector — LEAF's detector
// (Appendix B; Raab et al. 2020).
//
// Maintains a sliding window of the last `window_size` values.  Once the
// window is full, every update compares the most recent `stat_size`
// values against a uniform random sample of `stat_size` values drawn from
// the older remainder of the window using the two-sample KS test.  A
// p-value below `alpha` signals drift, and the window is truncated to the
// recent `stat_size` values so detection can re-arm on the new concept.
#pragma once

#include <deque>

#include "common/rng.hpp"
#include "drift/detector.hpp"

namespace leaf::drift {

struct KswinConfig {
  int window_size = 100;
  int stat_size = 30;
  double alpha = 0.005;
  std::uint64_t seed = 7;
};

class Kswin final : public DriftDetector {
 public:
  explicit Kswin(KswinConfig cfg = {});

  /// Feeds one error value.  Non-finite values are ignored (they signal a
  /// telemetry fault, not a distribution change) and never enter the
  /// window.
  bool update(double value) override;
  void reset() override;
  std::string name() const override { return "KSWIN"; }
  std::unique_ptr<DriftDetector> clone_fresh() const override;

  std::size_t window_fill() const { return window_.size(); }
  /// p-value of the most recent test (1.0 before the window first fills).
  double last_p_value() const { return last_p_; }

  void save_state(io::Serializer& out) const override;
  void load_state(io::Deserializer& in) override;

 private:
  KswinConfig cfg_;
  Rng rng_;
  std::deque<double> window_;
  double last_p_ = 1.0;
};

}  // namespace leaf::drift
