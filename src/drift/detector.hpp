// Drift detector interface.
//
// LEAF's detector "ingests the outputs of the in-use model in the form of
// NRMSE time-series to determine whether drift is occurring" (§4.1).  A
// detector consumes one scalar per evaluation step and flags the steps at
// which the error distribution has changed.  KSWIN is the paper's choice;
// ADWIN, DDM, EDDM, HDDM-A and Page-Hinkley are the alternatives its
// footnote 2 reports testing, all implemented here for the Appendix-B
// comparison bench.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "io/serializer.hpp"
#include "obs/metrics.hpp"

namespace leaf::drift {

/// Update/firing counter pair for one detector family
/// (`leaf_detector_updates_total` / `leaf_detector_firings_total` with a
/// `detector="..."` label).  Implementations hoist one as a static local
/// in update(), so the registry lookup happens once per family.
struct DetectorCounters {
  obs::Counter& updates;
  obs::Counter& firings;
  explicit DetectorCounters(const char* detector)
      : updates(obs::MetricsRegistry::global().counter(
            "leaf_detector_updates_total", obs::label("detector", detector))),
        firings(obs::MetricsRegistry::global().counter(
            "leaf_detector_firings_total", obs::label("detector", detector))) {}
};

class DriftDetector {
 public:
  virtual ~DriftDetector() = default;

  /// Feeds the next value of the monitored series (for LEAF: the NRMSE of
  /// the in-use model at the current evaluation step).  Returns true when
  /// drift is signalled at this step.  Detectors re-arm themselves after
  /// signalling (internal state resets as appropriate).
  virtual bool update(double value) = 0;

  /// Full reset to the just-constructed state.
  virtual void reset() = 0;

  virtual std::string name() const = 0;

  /// Fresh detector with identical configuration.
  virtual std::unique_ptr<DriftDetector> clone_fresh() const = 0;

  /// Snapshot hooks (leaf::io).  `save_state` serializes configuration and
  /// full mutable state; `load_state` restores it into an already
  /// constructed detector and throws io::SnapshotError when the saved
  /// configuration does not match this detector's.  Defaults throw —
  /// detectors without an implementation fail snapshots loudly.
  virtual void save_state(io::Serializer& out) const;
  virtual void load_state(io::Deserializer& in);
};

/// Runs a detector over a whole series; returns the flagged indices.
std::vector<std::size_t> detect_all(DriftDetector& detector,
                                    std::span<const double> series);

/// Adaptive binarizer used to feed the Bernoulli-stream detectors
/// (DDM / EDDM) a continuous error series: emits 1 when the value exceeds
/// an exponentially-weighted mean by `k` exponentially-weighted standard
/// deviations.  Exposed for tests.
class EwmaBinarizer {
 public:
  explicit EwmaBinarizer(double alpha = 0.05, double k = 2.0);
  bool push(double value);
  void reset();

  void save(io::Serializer& out) const;
  void load(io::Deserializer& in);

 private:
  double alpha_;
  double k_;
  bool primed_ = false;
  double mean_ = 0.0;
  double var_ = 0.0;
};

}  // namespace leaf::drift
