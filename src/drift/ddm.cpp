#include "drift/ddm.hpp"

#include <cmath>

namespace leaf::drift {

// --- DDM -------------------------------------------------------------

Ddm::Ddm(DdmConfig cfg)
    : cfg_(cfg), binarizer_(cfg.binarize_alpha, cfg.binarize_k) {}

bool Ddm::update(double value) {
  static DetectorCounters ctrs("DDM");
  ctrs.updates.inc();
  const bool error = binarizer_.push(value);
  ++n_;
  // Incremental Bernoulli mean and its standard error.
  p_ += (static_cast<double>(error) - p_) / static_cast<double>(n_);
  s_ = std::sqrt(p_ * (1.0 - p_) / static_cast<double>(n_));

  if (n_ < static_cast<std::uint64_t>(cfg_.min_samples)) return false;

  if (p_ + s_ < p_min_ + s_min_) {
    p_min_ = p_;
    s_min_ = s_;
  }

  if (p_ + s_ > p_min_ + cfg_.drift_level * s_min_) {
    // Drift: restart estimation for the new concept.
    n_ = 0;
    p_ = 1.0;
    s_ = 0.0;
    p_min_ = s_min_ = std::numeric_limits<double>::infinity();
    warning_ = false;
    ctrs.firings.inc();
    return true;
  }
  warning_ = p_ + s_ > p_min_ + cfg_.warn_level * s_min_;
  return false;
}

void Ddm::reset() {
  binarizer_.reset();
  n_ = 0;
  p_ = 1.0;
  s_ = 0.0;
  p_min_ = s_min_ = std::numeric_limits<double>::infinity();
  warning_ = false;
}

std::unique_ptr<DriftDetector> Ddm::clone_fresh() const {
  return std::make_unique<Ddm>(cfg_);
}

void Ddm::save_state(io::Serializer& out) const {
  out.put_i32(cfg_.min_samples);
  out.put_f64(cfg_.warn_level);
  out.put_f64(cfg_.drift_level);
  out.put_f64(cfg_.binarize_alpha);
  out.put_f64(cfg_.binarize_k);
  binarizer_.save(out);
  out.put_u64(n_);
  out.put_f64(p_);
  out.put_f64(s_);
  out.put_f64(p_min_);
  out.put_f64(s_min_);
  out.put_bool(warning_);
}

void Ddm::load_state(io::Deserializer& in) {
  DdmConfig saved;
  saved.min_samples = in.get_i32();
  saved.warn_level = in.get_f64();
  saved.drift_level = in.get_f64();
  saved.binarize_alpha = in.get_f64();
  saved.binarize_k = in.get_f64();
  if (saved.min_samples != cfg_.min_samples ||
      saved.warn_level != cfg_.warn_level ||
      saved.drift_level != cfg_.drift_level ||
      saved.binarize_alpha != cfg_.binarize_alpha ||
      saved.binarize_k != cfg_.binarize_k)
    throw io::SnapshotError(
        "DDM configuration mismatch between snapshot and detector");
  binarizer_.load(in);
  n_ = in.get_u64();
  p_ = in.get_f64();
  s_ = in.get_f64();
  p_min_ = in.get_f64();
  s_min_ = in.get_f64();
  warning_ = in.get_bool();
}

// --- EDDM ------------------------------------------------------------

Eddm::Eddm(EddmConfig cfg)
    : cfg_(cfg), binarizer_(cfg.binarize_alpha, cfg.binarize_k) {}

bool Eddm::update(double value) {
  static DetectorCounters ctrs("EDDM");
  ctrs.updates.inc();
  const bool error = binarizer_.push(value);
  ++t_;
  if (!error) return false;

  if (num_errors_ > 0) {
    const double dist = static_cast<double>(t_ - last_error_t_);
    ++num_errors_;
    const double delta = dist - dist_mean_;
    dist_mean_ += delta / static_cast<double>(num_errors_ - 1);
    dist_m2_ += delta * (dist - dist_mean_);
  } else {
    ++num_errors_;
  }
  last_error_t_ = t_;
  if (num_errors_ < static_cast<std::uint64_t>(cfg_.min_errors)) return false;

  const double var = num_errors_ > 2
                         ? dist_m2_ / static_cast<double>(num_errors_ - 2)
                         : 0.0;
  const double score = dist_mean_ + 2.0 * std::sqrt(var);
  if (score > best_score_) {
    best_score_ = score;
    return false;
  }
  if (best_score_ <= 0.0) return false;
  const double ratio = score / best_score_;
  if (ratio < cfg_.drift_threshold) {
    // Drift: restart distances for the new concept.
    num_errors_ = 0;
    dist_mean_ = 0.0;
    dist_m2_ = 0.0;
    best_score_ = 0.0;
    ctrs.firings.inc();
    return true;
  }
  return false;
}

void Eddm::reset() {
  binarizer_.reset();
  t_ = 0;
  last_error_t_ = 0;
  num_errors_ = 0;
  dist_mean_ = 0.0;
  dist_m2_ = 0.0;
  best_score_ = 0.0;
}

std::unique_ptr<DriftDetector> Eddm::clone_fresh() const {
  return std::make_unique<Eddm>(cfg_);
}

// --- HDDM-A ----------------------------------------------------------

HddmA::HddmA(HddmConfig cfg) : cfg_(cfg) {}

double HddmA::hoeffding_bound(std::uint64_t n) const {
  if (n == 0) return std::numeric_limits<double>::infinity();
  return std::sqrt(std::log(1.0 / cfg_.drift_confidence) /
                   (2.0 * static_cast<double>(n)));
}

bool HddmA::update(double value) {
  static DetectorCounters ctrs("HDDM-A");
  ctrs.updates.inc();
  // Normalize into [0, 1] with the running range (Hoeffding assumes a
  // bounded variable).
  lo_ = std::min(lo_, value);
  hi_ = std::max(hi_, value);
  const double range = hi_ - lo_;
  const double z = range > 0.0 ? (value - lo_) / range : 0.5;

  ++n_;
  sum_ += z;
  const double mean = sum_ / static_cast<double>(n_);
  const double bound = hoeffding_bound(n_);

  // Track the historically lowest upper confidence bound on the mean.
  if (n_min_ == 0 || mean + bound < sum_min_ / static_cast<double>(n_min_) +
                                        bound_min_) {
    n_min_ = n_;
    sum_min_ = sum_;
    bound_min_ = bound;
  }

  // Test: has the mean since the best cut point risen significantly?
  if (n_ > n_min_) {
    const std::uint64_t n_rest = n_ - n_min_;
    const double mean_rest =
        (sum_ - sum_min_) / static_cast<double>(n_rest);
    const double mean_best = sum_min_ / static_cast<double>(n_min_);
    const double eps =
        hoeffding_bound(n_min_) + hoeffding_bound(n_rest);
    if (mean_rest - mean_best > eps) {
      rearm();
      ctrs.firings.inc();
      return true;
    }
  }
  return false;
}

void HddmA::rearm() {
  n_ = 0;
  sum_ = 0.0;
  n_min_ = 0;
  sum_min_ = 0.0;
  bound_min_ = std::numeric_limits<double>::infinity();
}

void HddmA::reset() {
  rearm();
  lo_ = std::numeric_limits<double>::infinity();
  hi_ = -std::numeric_limits<double>::infinity();
}

std::unique_ptr<DriftDetector> HddmA::clone_fresh() const {
  return std::make_unique<HddmA>(cfg_);
}

// --- Page–Hinkley -----------------------------------------------------

PageHinkley::PageHinkley(PageHinkleyConfig cfg) : cfg_(cfg) {}

bool PageHinkley::update(double value) {
  static DetectorCounters ctrs("PageHinkley");
  ctrs.updates.inc();
  ++n_;
  mean_ = mean_ * cfg_.forgetting + value * (1.0 - cfg_.forgetting);
  if (n_ == 1) mean_ = value;
  cum_ += value - mean_ - cfg_.delta;
  cum_min_ = std::min(cum_min_, cum_);
  if (n_ < static_cast<std::uint64_t>(cfg_.min_samples)) return false;
  if (cum_ - cum_min_ > cfg_.lambda) {
    const double m = mean_;
    reset();
    mean_ = m;  // keep the level estimate across the concept switch
    ctrs.firings.inc();
    return true;
  }
  return false;
}

void PageHinkley::reset() {
  n_ = 0;
  mean_ = 0.0;
  cum_ = 0.0;
  cum_min_ = 0.0;
}

std::unique_ptr<DriftDetector> PageHinkley::clone_fresh() const {
  return std::make_unique<PageHinkley>(cfg_);
}

}  // namespace leaf::drift
