// ADWIN (ADaptive WINdowing; Bifet & Gavaldà 2007).
//
// Keeps a variable-length window of recent values compressed into
// exponential-histogram buckets and drops the oldest buckets whenever two
// sub-windows have means that differ beyond a Hoeffding-style bound with
// confidence delta.  One of the detectors the paper's footnote 2 compares
// against KSWIN.
#pragma once

#include <cstdint>
#include <deque>

#include "drift/detector.hpp"

namespace leaf::drift {

struct AdwinConfig {
  double delta = 0.002;     ///< confidence parameter
  int max_buckets = 5;      ///< buckets per exponential row
  int min_window = 10;      ///< don't test below this many samples
  int check_period = 4;     ///< run the (O(buckets^2)) test every k updates
};

class Adwin final : public DriftDetector {
 public:
  explicit Adwin(AdwinConfig cfg = {});

  bool update(double value) override;
  void reset() override;
  std::string name() const override { return "ADWIN"; }
  std::unique_ptr<DriftDetector> clone_fresh() const override;

  std::size_t window_length() const { return total_count_; }
  double window_mean() const;

  void save_state(io::Serializer& out) const override;
  void load_state(io::Deserializer& in) override;

 private:
  struct Bucket {
    double sum = 0.0;
    double var = 0.0;       ///< within-bucket sum of squared deviations
    std::uint64_t count = 0;
  };

  void insert(double value);
  void compress();
  bool detect_cut();
  void drop_oldest_bucket();

  AdwinConfig cfg_;
  // rows_[i] holds buckets of capacity 2^i, newest first within a row;
  // rows_ ordered small (new) to large (old).
  std::deque<std::deque<Bucket>> rows_;
  std::uint64_t total_count_ = 0;
  double total_sum_ = 0.0;
  double total_var_ = 0.0;
  int since_check_ = 0;
};

}  // namespace leaf::drift
