// DDM, EDDM, HDDM-A, and Page–Hinkley — the remaining comparators from the
// paper's footnote 2.
//
// DDM (Gama et al. 2004) and EDDM (Baena-García et al. 2006) are defined
// on Bernoulli error streams; following common practice for regression
// monitoring, the continuous NRMSE series is binarized by the adaptive
// EWMA thresholder in detector.hpp ("error" = NRMSE above its recent
// mean + 2 sigma).  HDDM-A (Frías-Blanco et al. 2015) and Page–Hinkley
// operate on the continuous values directly.
#pragma once

#include <cstdint>
#include <limits>

#include "drift/detector.hpp"

namespace leaf::drift {

struct DdmConfig {
  int min_samples = 30;
  double warn_level = 2.0;
  double drift_level = 3.0;
  /// EWMA binarizer parameters (see EwmaBinarizer).  The slow adaptation
  /// rate makes a sustained level shift produce a sustained run of
  /// binarized errors, which is what DDM's cumulative error-rate test
  /// needs to fire.
  double binarize_alpha = 0.005;
  double binarize_k = 2.0;
};

class Ddm final : public DriftDetector {
 public:
  explicit Ddm(DdmConfig cfg = {});
  bool update(double value) override;
  void reset() override;
  std::string name() const override { return "DDM"; }
  std::unique_ptr<DriftDetector> clone_fresh() const override;
  bool in_warning_zone() const { return warning_; }

  void save_state(io::Serializer& out) const override;
  void load_state(io::Deserializer& in) override;

 private:
  DdmConfig cfg_;
  EwmaBinarizer binarizer_;
  std::uint64_t n_ = 0;
  double p_ = 1.0;
  double s_ = 0.0;
  double p_min_ = std::numeric_limits<double>::infinity();
  double s_min_ = std::numeric_limits<double>::infinity();
  bool warning_ = false;
};

struct EddmConfig {
  int min_errors = 30;
  double warn_threshold = 0.95;
  double drift_threshold = 0.9;
  double binarize_alpha = 0.005;
  double binarize_k = 2.0;
};

/// EDDM tracks the distances (in samples) between consecutive errors: a
/// shrinking mean distance signals an increasing error rate.
class Eddm final : public DriftDetector {
 public:
  explicit Eddm(EddmConfig cfg = {});
  bool update(double value) override;
  void reset() override;
  std::string name() const override { return "EDDM"; }
  std::unique_ptr<DriftDetector> clone_fresh() const override;

 private:
  EddmConfig cfg_;
  EwmaBinarizer binarizer_;
  std::uint64_t t_ = 0;
  std::uint64_t last_error_t_ = 0;
  std::uint64_t num_errors_ = 0;
  double dist_mean_ = 0.0;
  double dist_m2_ = 0.0;
  double best_score_ = 0.0;
};

struct HddmConfig {
  double drift_confidence = 0.001;
};

/// HDDM-A: Hoeffding-bound test on the running mean vs. the best
/// (lowest-bound) historical mean.  Operates on continuous values
/// normalized on the fly into [0, 1] by the running min/max.
class HddmA final : public DriftDetector {
 public:
  explicit HddmA(HddmConfig cfg = {});
  bool update(double value) override;
  void reset() override;
  std::string name() const override { return "HDDM-A"; }
  std::unique_ptr<DriftDetector> clone_fresh() const override;

 private:
  double hoeffding_bound(std::uint64_t n) const;
  /// Restarts mean tracking after a detection, keeping the running
  /// normalization range (the value scale doesn't reset with the concept).
  void rearm();

  HddmConfig cfg_;
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  std::uint64_t n_min_ = 0;
  double sum_min_ = 0.0;
  double bound_min_ = std::numeric_limits<double>::infinity();
  double lo_ = std::numeric_limits<double>::infinity();
  double hi_ = -std::numeric_limits<double>::infinity();
};

struct PageHinkleyConfig {
  double delta = 0.005;   ///< magnitude tolerance
  double lambda = 50.0;   ///< detection threshold on the cumulative stat
  double forgetting = 0.9999;
  int min_samples = 30;
};

/// Page–Hinkley test for an upward shift of the mean.
class PageHinkley final : public DriftDetector {
 public:
  explicit PageHinkley(PageHinkleyConfig cfg = {});
  bool update(double value) override;
  void reset() override;
  std::string name() const override { return "PageHinkley"; }
  std::unique_ptr<DriftDetector> clone_fresh() const override;

 private:
  PageHinkleyConfig cfg_;
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double cum_ = 0.0;
  double cum_min_ = 0.0;
};

}  // namespace leaf::drift
