#include "drift/adwin.hpp"

#include <cassert>
#include <cmath>

namespace leaf::drift {

Adwin::Adwin(AdwinConfig cfg) : cfg_(cfg) {
  assert(cfg_.delta > 0.0 && cfg_.delta < 1.0);
  assert(cfg_.max_buckets >= 2);
}

double Adwin::window_mean() const {
  return total_count_ > 0 ? total_sum_ / static_cast<double>(total_count_)
                          : 0.0;
}

void Adwin::insert(double value) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.front().push_front(Bucket{value, 0.0, 1});
  total_sum_ += value;
  ++total_count_;
  // Incremental total variance update (Chan's formula for adding one
  // point to the aggregate).
  if (total_count_ > 1) {
    const double mean_prev =
        (total_sum_ - value) / static_cast<double>(total_count_ - 1);
    const double d = value - mean_prev;
    total_var_ += d * d * static_cast<double>(total_count_ - 1) /
                  static_cast<double>(total_count_);
  }
  compress();
}

void Adwin::compress() {
  for (std::size_t level = 0; level < rows_.size(); ++level) {
    auto& row = rows_[level];
    if (static_cast<int>(row.size()) <= cfg_.max_buckets) break;
    // Merge the two oldest buckets of this row into the next row.
    Bucket b2 = row.back();
    row.pop_back();
    Bucket b1 = row.back();
    row.pop_back();
    Bucket merged;
    merged.count = b1.count + b2.count;
    merged.sum = b1.sum + b2.sum;
    const double m1 = b1.sum / static_cast<double>(b1.count);
    const double m2 = b2.sum / static_cast<double>(b2.count);
    const double d = m1 - m2;
    merged.var = b1.var + b2.var +
                 d * d * static_cast<double>(b1.count) *
                     static_cast<double>(b2.count) /
                     static_cast<double>(merged.count);
    if (level + 1 == rows_.size()) rows_.emplace_back();
    rows_[level + 1].push_front(merged);
  }
}

void Adwin::drop_oldest_bucket() {
  assert(!rows_.empty());
  auto& last_row = rows_.back();
  assert(!last_row.empty());
  const Bucket& b = last_row.back();
  total_sum_ -= b.sum;
  total_count_ -= b.count;
  // Remove the bucket's contribution to the aggregate variance (reverse
  // of the merge formula; floored at zero for numerical safety).
  if (total_count_ > 0) {
    const double mb = b.sum / static_cast<double>(b.count);
    const double mrest = total_sum_ / static_cast<double>(total_count_);
    const double d = mb - mrest;
    total_var_ -= b.var + d * d * static_cast<double>(b.count) *
                              static_cast<double>(total_count_) /
                              static_cast<double>(total_count_ + b.count);
    if (total_var_ < 0.0) total_var_ = 0.0;
  } else {
    total_var_ = 0.0;
  }
  last_row.pop_back();
  if (last_row.empty() && rows_.size() > 1) rows_.pop_back();
}

bool Adwin::detect_cut() {
  if (total_count_ < static_cast<std::uint64_t>(cfg_.min_window)) return false;

  bool drift = false;
  bool reduced = true;
  while (reduced) {
    reduced = false;
    // Walk cut points from oldest to newest: W = W0 (old) | W1 (new).
    double sum0 = 0.0;
    std::uint64_t n0 = 0;
    const double total_variance =
        total_count_ > 1
            ? total_var_ / static_cast<double>(total_count_ - 1)
            : 0.0;
    const double delta_prime =
        cfg_.delta / std::log(static_cast<double>(total_count_) + 1.0);

    for (std::size_t level = rows_.size(); level-- > 0 && !reduced;) {
      const auto& row = rows_[level];
      // Oldest bucket within a row is at the back.
      for (std::size_t bi = row.size(); bi-- > 0;) {
        const Bucket& b = row[bi];
        sum0 += b.sum;
        n0 += b.count;
        const std::uint64_t n1 = total_count_ - n0;
        if (n0 < 1 || n1 < 1) continue;
        const double m0 = sum0 / static_cast<double>(n0);
        const double m1 =
            (total_sum_ - sum0) / static_cast<double>(n1);
        const double inv_m = 1.0 / static_cast<double>(n0) +
                             1.0 / static_cast<double>(n1);
        const double m_harm = 1.0 / inv_m;
        const double eps =
            std::sqrt(2.0 / m_harm * total_variance *
                      std::log(2.0 / delta_prime)) +
            2.0 / (3.0 * m_harm) * std::log(2.0 / delta_prime);
        if (std::abs(m0 - m1) > eps) {
          drift = true;
          drop_oldest_bucket();
          reduced = true;  // restart the scan on the shrunk window
          break;
        }
      }
    }
  }
  return drift;
}

bool Adwin::update(double value) {
  static DetectorCounters ctrs("ADWIN");
  ctrs.updates.inc();
  insert(value);
  if (++since_check_ < cfg_.check_period) return false;
  since_check_ = 0;
  const bool drift = detect_cut();
  if (drift) ctrs.firings.inc();
  return drift;
}

void Adwin::reset() {
  rows_.clear();
  total_count_ = 0;
  total_sum_ = 0.0;
  total_var_ = 0.0;
  since_check_ = 0;
}

std::unique_ptr<DriftDetector> Adwin::clone_fresh() const {
  return std::make_unique<Adwin>(cfg_);
}

void Adwin::save_state(io::Serializer& out) const {
  out.put_f64(cfg_.delta);
  out.put_i32(cfg_.max_buckets);
  out.put_i32(cfg_.min_window);
  out.put_i32(cfg_.check_period);
  out.put_u64(rows_.size());
  for (const auto& row : rows_) {
    out.put_u64(row.size());
    for (const Bucket& b : row) {
      out.put_f64(b.sum);
      out.put_f64(b.var);
      out.put_u64(b.count);
    }
  }
  out.put_u64(total_count_);
  out.put_f64(total_sum_);
  out.put_f64(total_var_);
  out.put_i32(since_check_);
}

void Adwin::load_state(io::Deserializer& in) {
  AdwinConfig saved;
  saved.delta = in.get_f64();
  saved.max_buckets = in.get_i32();
  saved.min_window = in.get_i32();
  saved.check_period = in.get_i32();
  if (saved.delta != cfg_.delta || saved.max_buckets != cfg_.max_buckets ||
      saved.min_window != cfg_.min_window ||
      saved.check_period != cfg_.check_period)
    throw io::SnapshotError(
        "ADWIN configuration mismatch between snapshot and detector");
  const std::size_t num_rows = in.get_count(8);  // row-size word per row
  std::deque<std::deque<Bucket>> rows;
  for (std::size_t r = 0; r < num_rows; ++r) {
    const std::size_t row_size = in.get_count(8 + 8 + 8);
    std::deque<Bucket> row;
    for (std::size_t i = 0; i < row_size; ++i) {
      Bucket b;
      b.sum = in.get_f64();
      b.var = in.get_f64();
      b.count = in.get_u64();
      row.push_back(b);
    }
    rows.push_back(std::move(row));
  }
  const std::uint64_t total_count = in.get_u64();
  const double total_sum = in.get_f64();
  const double total_var = in.get_f64();
  const int since_check = in.get_i32();
  rows_ = std::move(rows);
  total_count_ = total_count;
  total_sum_ = total_sum;
  total_var_ = total_var;
  since_check_ = since_check;
}

}  // namespace leaf::drift
