#include "drift/detector.hpp"

#include <cmath>
#include <span>

namespace leaf::drift {

std::vector<std::size_t> detect_all(DriftDetector& detector,
                                    std::span<const double> series) {
  std::vector<std::size_t> hits;
  for (std::size_t i = 0; i < series.size(); ++i)
    if (detector.update(series[i])) hits.push_back(i);
  return hits;
}

EwmaBinarizer::EwmaBinarizer(double alpha, double k) : alpha_(alpha), k_(k) {}

bool EwmaBinarizer::push(double value) {
  if (!primed_) {
    primed_ = true;
    mean_ = value;
    var_ = 0.0;
    return false;
  }
  const double deviation = value - mean_;
  const bool flagged = deviation > k_ * std::sqrt(var_) && var_ > 0.0;
  // Update after testing so a spike doesn't mask itself.
  mean_ += alpha_ * deviation;
  var_ = (1.0 - alpha_) * (var_ + alpha_ * deviation * deviation);
  return flagged;
}

void EwmaBinarizer::reset() {
  primed_ = false;
  mean_ = 0.0;
  var_ = 0.0;
}

void DriftDetector::save_state(io::Serializer& out) const {
  (void)out;
  throw io::SnapshotError("detector '" + name() +
                          "' does not support snapshots");
}

void DriftDetector::load_state(io::Deserializer& in) {
  (void)in;
  throw io::SnapshotError("detector '" + name() +
                          "' does not support snapshots");
}

void EwmaBinarizer::save(io::Serializer& out) const {
  out.put_f64(alpha_);
  out.put_f64(k_);
  out.put_bool(primed_);
  out.put_f64(mean_);
  out.put_f64(var_);
}

void EwmaBinarizer::load(io::Deserializer& in) {
  alpha_ = in.get_f64();
  k_ = in.get_f64();
  primed_ = in.get_bool();
  mean_ = in.get_f64();
  var_ = in.get_f64();
}

}  // namespace leaf::drift
