#include "serve/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <utility>

#include "common/calendar.hpp"
#include "common/metrics.hpp"
#include "common/stats.hpp"
#include "io/serializer.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "par/parallel.hpp"

namespace leaf::serve {

namespace {

constexpr const char* kFleetFile = "fleet.leafsnap";

void write_ints(io::Serializer& out, const std::vector<int>& v) {
  out.put_ints(v);
}

std::string fmt6(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

/// One shard = one (KPI, model family, scheme) pipeline.  `step()` is the
/// loop body of core::run_scheme verbatim (uncached path, no ingest
/// guards), so a shard's EvalResult matches run_scheme exactly.
struct FleetRuntime::Shard {
  ShardSpec spec;
  int index = -1;  ///< position in the fleet; stamped on emitted events
  const data::Featurizer* featurizer = nullptr;
  double dispersion = 0.0;
  core::EvalConfig cfg;
  std::unique_ptr<models::Regressor> prototype;
  std::unique_ptr<core::MitigationScheme> scheme;

  // --- mutable per-step state (everything below is snapshotted) ---------
  models::FitCaches fit_caches;
  obs::EventLog events;  ///< single-writer: only this shard's step() emits
  std::unique_ptr<models::Regressor> model;
  drift::Kswin detector;
  Rng rng;
  data::SupervisedSet train;
  core::EvalResult result;
  std::vector<double> abs_ne_samples;
  int next_day = 0;
  int num_days = 0;
  double norm_range = 0.0;
  bool done = false;
  std::uint64_t steps = 0;

  Shard(ShardSpec s, const data::Featurizer& f, double disp,
        const core::EvalConfig& c, const Scale& scale)
      : spec(s),
        featurizer(&f),
        dispersion(disp),
        cfg(c),
        prototype(models::make_model(spec.model, scale, cfg.seed)),
        scheme(core::make_scheme(spec.scheme, disp, cfg.seed ^ 0x99)),
        detector(cfg.detector),
        rng(cfg.seed) {}

  /// Initial training, mirroring the run_scheme preamble.
  void init() {
    result = core::EvalResult{};
    result.scheme = scheme->name();
    result.model = prototype->name();

    const int anchor =
        cfg.anchor_day >= 0 ? cfg.anchor_day : cal::anchor_2018_07_01();
    norm_range = cfg.norm_range_override > 0.0 ? cfg.norm_range_override
                                               : featurizer->norm_range();
    num_days = featurizer->dataset().num_days();

    train = featurizer->window(anchor - cfg.train_window + 1, anchor);
    if (train.empty())
      throw std::runtime_error(
          "serve: shard training window produced no supervised pairs");
    model = prototype->clone_untrained();
    model->attach_caches(&fit_caches);
    {
      LEAF_SPAN("serve.init_fit");
      model->fit(train.X, train.y);
    }

    scheme->reset();
    detector.reset();
    rng = Rng(cfg.seed);
    abs_ne_samples.clear();
    events.clear();
    next_day = anchor + cfg.horizon;
    done = next_day >= num_days;
    steps = 0;
  }

  /// One evaluation step (the run_scheme loop body for day = next_day).
  void step() {
    if (done) return;
    LEAF_SPAN("serve.step");
    static obs::Counter& steps_ctr =
        obs::MetricsRegistry::global().counter("leaf_eval_steps_total");
    static obs::Counter& scored_ctr =
        obs::MetricsRegistry::global().counter("leaf_eval_days_scored_total");
    static obs::Counter& skipped_ctr =
        obs::MetricsRegistry::global().counter("leaf_eval_days_skipped_total");
    static obs::Counter& nonfinite_ctr =
        obs::MetricsRegistry::global().counter("leaf_eval_nonfinite_total");
    static obs::Counter& drift_ctr =
        obs::MetricsRegistry::global().counter("leaf_drift_events_total");
    static obs::Counter& retrain_ctr =
        obs::MetricsRegistry::global().counter("leaf_retrains_total");
    static obs::Histogram& retrain_latency =
        obs::MetricsRegistry::global().histogram("leaf_retrain_latency_seconds",
                                                 obs::latency_buckets());
    ++steps;
    steps_ctr.inc();
    const int day = next_day;
    next_day += cfg.stride;
    if (next_day >= num_days) done = true;

    const auto emit = [&](obs::EventKind kind, std::string detail,
                          double seconds = 0.0) {
      events.emit({kind, day, index, data::to_string(spec.kpi), result.model,
                   result.scheme, std::move(detail), seconds});
    };

    const data::SupervisedSet test = featurizer->at_target_day(day);
    if (static_cast<int>(test.size()) < cfg.min_samples_per_day) {
      ++result.degraded.days_skipped;
      skipped_ctr.inc();
      return;
    }

    std::vector<double> pred(test.size());
    model->predict_into(test.X, pred);
    const double err = metrics::nrmse(pred, test.y, norm_range);
    if (cfg.guard_nonfinite && !std::isfinite(err)) {
      ++result.degraded.nonfinite_errors;
      nonfinite_ctr.inc();
      emit(obs::EventKind::kNonFinite, "rows=" + std::to_string(test.size()));
      return;
    }
    scored_ctr.inc();

    double ne_acc = 0.0;
    std::size_t ne_count = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
      const double ne =
          metrics::normalized_error(pred[i], test.y[i], norm_range);
      if (cfg.guard_nonfinite && !std::isfinite(ne)) continue;
      ne_acc += ne;
      ++ne_count;
      abs_ne_samples.push_back(std::abs(ne));
    }

    result.days.push_back(day);
    result.nrmse.push_back(err);
    result.mean_ne.push_back(
        ne_count > 0 ? ne_acc / static_cast<double>(ne_count) : 0.0);

    const bool drift = detector.update(err);
    if (drift) {
      result.drift_days.push_back(day);
      drift_ctr.inc();
      emit(obs::EventKind::kDrift,
           "detector=KSWIN,p=" + fmt6(detector.last_p_value()) +
               ",nrmse=" + fmt6(err));
    }

    core::SchemeContext ctx{.featurizer = *featurizer,
                            .model = *model,
                            .current_train = train,
                            .eval_day = day,
                            .nrmse = err,
                            .drift = drift,
                            .train_window = cfg.train_window,
                            .rng = &rng,
                            .prototype = prototype.get(),
                            .cache = nullptr,
                            .events = &events,
                            .shard = index};
    const double retrain_t0 = obs::enabled() ? obs::monotonic_seconds() : 0.0;
    std::optional<data::SupervisedSet> new_train = scheme->on_step(ctx);
    bool retrained = false;
    if (std::unique_ptr<models::Regressor> replacement =
            scheme->take_replacement_model()) {
      model = std::move(replacement);
      result.retrain_days.push_back(day);
      retrained = true;
    } else if (new_train.has_value() && !new_train->empty()) {
      train = std::move(*new_train);
      model = prototype->clone_untrained();
      model->attach_caches(&fit_caches);
      {
        LEAF_SPAN("serve.retrain_fit");
        model->fit(train.X, train.y);
      }
      result.retrain_days.push_back(day);
      retrained = true;
    }
    if (retrained) {
      const double secs =
          obs::enabled() ? obs::monotonic_seconds() - retrain_t0 : 0.0;
      retrain_ctr.inc();
      retrain_latency.observe(secs);
      emit(obs::EventKind::kRetrain,
           "train_rows=" + std::to_string(train.size()), secs);
    }
  }

  core::EvalResult finalized_result() const {
    core::EvalResult out = result;
    out.ne_p95 = abs_ne_samples.empty()
                     ? 0.0
                     : stats::quantile(abs_ne_samples, 0.95);
    return out;
  }

  void save(io::Serializer& out) const {
    io::write(out, rng);
    detector.save_state(out);
    scheme->save_state(out);
    models::save_regressor(out, *model);
    fit_caches.bin_edges.save(out);
    io::write(out, train);
    out.put_i32(next_day);
    out.put_i32(num_days);
    out.put_f64(norm_range);
    out.put_bool(done);
    out.put_u64(steps);
    write_ints(out, result.days);
    out.put_doubles(result.nrmse);
    out.put_doubles(result.mean_ne);
    write_ints(out, result.retrain_days);
    write_ints(out, result.drift_days);
    out.put_i32(result.degraded.days_skipped);
    out.put_i32(result.degraded.nonfinite_errors);
    out.put_i32(result.degraded.frozen_detector_days);
    out.put_i32(result.degraded.suppressed_retrains);
    out.put_i64(result.degraded.values_imputed);
    out.put_i64(result.degraded.quarantined_records);
    out.put_doubles(abs_ne_samples);
    // Format v2: the shard's event log rides along, so a resumed run's
    // merged event stream is identical to an uninterrupted one.
    events.save(out);
  }

  /// Fully parsed shard state, applied only after the whole snapshot
  /// parses cleanly (no partial restore).
  struct Restored {
    Rng::State rng;
    std::unique_ptr<drift::Kswin> detector;
    std::unique_ptr<core::MitigationScheme> scheme;
    std::unique_ptr<models::Regressor> model;
    models::BinEdgeCache bin_edges;
    data::SupervisedSet train;
    int next_day = 0;
    int num_days = 0;
    double norm_range = 0.0;
    bool done = false;
    std::uint64_t steps = 0;
    core::EvalResult result;
    std::vector<double> abs_ne_samples;
    obs::EventLog events;
  };

  Restored parse(io::Deserializer& in) const {
    Restored r;
    Rng tmp_rng(cfg.seed);
    io::read_rng(in, tmp_rng);
    r.rng = tmp_rng.capture();
    r.detector = std::make_unique<drift::Kswin>(cfg.detector);
    r.detector->load_state(in);
    r.scheme = core::make_scheme(spec.scheme, dispersion, cfg.seed ^ 0x99);
    r.scheme->reset();
    r.scheme->load_state(in);
    r.model = models::load_regressor(in);
    if (r.model->name() != prototype->name())
      throw io::SnapshotError("shard model family mismatch: snapshot has '" +
                              r.model->name() + "', runtime expects '" +
                              prototype->name() + "'");
    r.bin_edges.load(in);
    r.train = io::read_supervised_set(in);
    r.next_day = in.get_i32();
    r.num_days = in.get_i32();
    r.norm_range = in.get_f64();
    r.done = in.get_bool();
    r.steps = in.get_u64();
    r.result.scheme = r.scheme->name();
    r.result.model = prototype->name();
    r.result.days = in.get_ints();
    r.result.nrmse = in.get_doubles();
    r.result.mean_ne = in.get_doubles();
    r.result.retrain_days = in.get_ints();
    r.result.drift_days = in.get_ints();
    r.result.degraded.days_skipped = in.get_i32();
    r.result.degraded.nonfinite_errors = in.get_i32();
    r.result.degraded.frozen_detector_days = in.get_i32();
    r.result.degraded.suppressed_retrains = in.get_i32();
    r.result.degraded.values_imputed = in.get_i64();
    r.result.degraded.quarantined_records = in.get_i64();
    r.abs_ne_samples = in.get_doubles();
    r.events.load(in);
    if (!in.exhausted())
      throw io::SnapshotError("trailing bytes after shard state");
    if (r.result.nrmse.size() != r.result.days.size() ||
        r.result.mean_ne.size() != r.result.days.size())
      throw io::SnapshotError("shard result series have inconsistent sizes");
    return r;
  }

  void apply(Restored&& r) {
    rng.restore(r.rng);
    detector = std::move(*r.detector);
    scheme = std::move(r.scheme);
    model = std::move(r.model);
    fit_caches.bin_edges = std::move(r.bin_edges);
    model->attach_caches(&fit_caches);
    train = std::move(r.train);
    next_day = r.next_day;
    num_days = r.num_days;
    norm_range = r.norm_range;
    done = r.done;
    steps = r.steps;
    result = std::move(r.result);
    abs_ne_samples = std::move(r.abs_ne_samples);
    events = std::move(r.events);
  }
};

FleetRuntime::FleetRuntime(const data::CellularDataset& ds, const Scale& scale,
                           std::vector<ShardSpec> specs,
                           std::uint64_t fleet_seed)
    : ds_(&ds), scale_(scale), specs_(std::move(specs)),
      fleet_seed_(fleet_seed) {
  if (specs_.empty())
    throw std::invalid_argument("FleetRuntime: at least one shard required");

  // One featurizer (and dispersion) per distinct KPI, shared read-only by
  // the shards forecasting it.
  std::map<data::TargetKpi, std::pair<const data::Featurizer*, double>> by_kpi;
  for (const ShardSpec& spec : specs_) {
    if (by_kpi.count(spec.kpi)) continue;
    featurizers_.push_back(std::make_unique<data::Featurizer>(ds, spec.kpi));
    by_kpi[spec.kpi] = {featurizers_.back().get(),
                        core::kpi_dispersion(ds, spec.kpi)};
  }

  // Per-shard seeds: explicit when given, otherwise a counter-based
  // substream of the fleet seed — order-independent, so the derivation is
  // identical no matter how shards are scheduled.
  const Rng fleet_rng(fleet_seed_);
  shards_.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const ShardSpec& spec = specs_[i];
    std::uint64_t seed = spec.seed;
    if (seed == 0) seed = fleet_rng.substream(i)();
    const auto [featurizer, dispersion] = by_kpi[spec.kpi];
    core::EvalConfig cfg = core::make_eval_config(scale_, seed);
    shards_.push_back(
        std::make_unique<Shard>(spec, *featurizer, dispersion, cfg, scale_));
    shards_.back()->index = static_cast<int>(i);
  }
}

FleetRuntime::~FleetRuntime() = default;

bool FleetRuntime::done() const {
  for (const auto& s : shards_)
    if (!s->done) return false;
  return true;
}

void FleetRuntime::start() {
  if (started_) return;
  started_ = true;
  par::parallel_for(shards_.size(), [&](std::size_t i) { shards_[i]->init(); });
}

bool FleetRuntime::step() {
  start();
  if (done()) return false;
  par::parallel_for(shards_.size(), [&](std::size_t i) { shards_[i]->step(); });
  ++steps_run_;
  return !done();
}

std::uint64_t FleetRuntime::run_to_end() {
  std::uint64_t n = 0;
  start();
  while (!done()) {
    step();
    ++n;
  }
  return n;
}

std::uint64_t FleetRuntime::run_steps(std::uint64_t n) {
  std::uint64_t ran = 0;
  start();
  for (; ran < n && !done(); ++ran) step();
  return ran;
}

std::uint64_t FleetRuntime::snapshot(const std::string& dir) const {
  if (!started_)
    throw io::SnapshotError("cannot snapshot before the fleet has started");
  std::filesystem::create_directories(dir);
  io::SnapshotWriter writer;

  io::Serializer& meta = writer.section("meta");
  meta.put_u64(fleet_seed_);
  meta.put_u64(steps_run_);
  meta.put_u64(shards_.size());
  for (const auto& shard : shards_) {
    meta.put_string(data::to_string(shard->spec.kpi));
    meta.put_string(models::to_string(shard->spec.model));
    meta.put_string(shard->spec.scheme);
    meta.put_u64(shard->cfg.seed);
  }

  for (std::size_t i = 0; i < shards_.size(); ++i)
    shards_[i]->save(writer.section("shard" + std::to_string(i)));

  const obs::Stopwatch sw;
  const std::uint64_t bytes =
      writer.write_file((std::filesystem::path(dir) / kFleetFile).string());
  const double secs = sw.seconds();
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.counter("leaf_snapshots_total").inc();
  reg.histogram("leaf_snapshot_write_seconds", obs::latency_buckets())
      .observe(secs);
  reg.gauge("leaf_snapshot_bytes").set(static_cast<double>(bytes));
  // Operational message: deliberately NOT an event-log entry, or a resumed
  // run's event stream could never match an uninterrupted one.
  LEAF_LOG_INFO("serve: snapshot at step %llu -> %s (%llu bytes)",
                static_cast<unsigned long long>(steps_run_), dir.c_str(),
                static_cast<unsigned long long>(bytes));
  return bytes;
}

void FleetRuntime::restore(const std::string& dir) {
  const auto reader = io::SnapshotReader::from_file(
      (std::filesystem::path(dir) / kFleetFile).string());

  io::Deserializer meta = reader.section("meta");
  if (meta.get_u64() != fleet_seed_)
    throw io::SnapshotError("fleet seed mismatch between snapshot and runtime");
  const std::uint64_t steps_run = meta.get_u64();
  if (meta.get_u64() != shards_.size())
    throw io::SnapshotError("shard count mismatch between snapshot and runtime");
  for (const auto& shard : shards_) {
    const std::string kpi = meta.get_string();
    const std::string model = meta.get_string();
    const std::string scheme = meta.get_string();
    const std::uint64_t seed = meta.get_u64();
    if (kpi != data::to_string(shard->spec.kpi) ||
        model != models::to_string(shard->spec.model) ||
        scheme != shard->spec.scheme || seed != shard->cfg.seed)
      throw io::SnapshotError(
          "shard configuration mismatch between snapshot and runtime "
          "(snapshot: " + kpi + "/" + model + "/" + scheme + ")");
  }

  // Parse every shard into temporaries first; only a fully valid snapshot
  // mutates the runtime.
  std::vector<Shard::Restored> restored;
  restored.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    io::Deserializer in = reader.section("shard" + std::to_string(i));
    restored.push_back(shards_[i]->parse(in));
  }

  for (std::size_t i = 0; i < shards_.size(); ++i)
    shards_[i]->apply(std::move(restored[i]));
  steps_run_ = steps_run;
  started_ = true;
  obs::MetricsRegistry::global().counter("leaf_restores_total").inc();
  LEAF_LOG_INFO("serve: restored %zu shards at step %llu from %s",
                shards_.size(), static_cast<unsigned long long>(steps_run_),
                dir.c_str());
}

std::vector<core::EvalResult> FleetRuntime::results() const {
  std::vector<core::EvalResult> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->finalized_result());
  return out;
}

ServeStats FleetRuntime::stats() const {
  ServeStats stats;
  stats.total_steps = steps_run_;
  for (const auto& shard : shards_) {
    ShardStats s;
    s.kpi = data::to_string(shard->spec.kpi);
    s.model = shard->prototype->name();
    s.scheme = shard->scheme->name();
    s.steps = shard->steps;
    s.days_evaluated = static_cast<int>(shard->result.days.size());
    s.retrains = shard->result.retrain_count();
    s.drift_events = static_cast<int>(shard->result.drift_days.size());
    s.days_skipped = shard->result.degraded.days_skipped;
    s.nonfinite_errors = shard->result.degraded.nonfinite_errors;
    s.next_day = shard->next_day;
    s.done = shard->done;
    stats.total_retrains += s.retrains;
    stats.total_drift_events += s.drift_events;
    if (s.done) ++stats.shards_done;
    stats.shards.push_back(std::move(s));
  }
  return stats;
}

std::vector<obs::Event> FleetRuntime::merged_events() const {
  std::vector<const obs::EventLog*> logs;
  logs.reserve(shards_.size());
  for (const auto& shard : shards_) logs.push_back(&shard->events);
  return obs::EventLog::merge(logs);
}

std::string FleetRuntime::events_jsonl(bool with_timing) const {
  return obs::EventLog::to_jsonl(merged_events(), with_timing);
}

std::string FleetRuntime::scrape(bool include_process) const {
  // Fleet-state-derived series: recomputed from shard state on every call,
  // so they are deterministic across LEAF_THREADS *and* across a
  // SIGKILL + restore cycle (unlike process-global registry counters,
  // which are process-lifetime).
  std::string out;
  char buf[160];
  const auto line = [&](const char* name, const std::string& labels,
                        long long v) {
    std::snprintf(buf, sizeof buf, "%s{%s} %lld\n", name, labels.c_str(), v);
    out += buf;
  };
  const ServeStats st = stats();
  const char* kShardMetrics[] = {
      "leaf_fleet_shard_steps",       "leaf_fleet_shard_days_evaluated",
      "leaf_fleet_shard_retrains",    "leaf_fleet_shard_drift_events",
      "leaf_fleet_shard_days_skipped", "leaf_fleet_shard_done"};
  for (const char* m : kShardMetrics) {
    out += "# TYPE ";
    out += m;
    out += " gauge\n";
    for (std::size_t i = 0; i < st.shards.size(); ++i) {
      const ShardStats& s = st.shards[i];
      const std::string labels =
          obs::label("shard", std::to_string(i)) + "," +
          obs::label("kpi", s.kpi) + "," + obs::label("model", s.model) +
          "," + obs::label("scheme", s.scheme);
      long long v = 0;
      if (m == kShardMetrics[0]) v = static_cast<long long>(s.steps);
      else if (m == kShardMetrics[1]) v = s.days_evaluated;
      else if (m == kShardMetrics[2]) v = s.retrains;
      else if (m == kShardMetrics[3]) v = s.drift_events;
      else if (m == kShardMetrics[4]) v = s.days_skipped;
      else v = s.done ? 1 : 0;
      line(m, labels, v);
    }
  }
  const auto total = [&out](const char* name, long long v) {
    out += "# TYPE ";
    out += name;
    out += " gauge\n";
    out += name;
    out += " " + std::to_string(v) + "\n";
  };
  total("leaf_fleet_steps", static_cast<long long>(st.total_steps));
  total("leaf_fleet_shards", static_cast<long long>(st.shards.size()));
  total("leaf_fleet_shards_done", static_cast<long long>(st.shards_done));
  total("leaf_fleet_retrains", st.total_retrains);
  total("leaf_fleet_drift_events", st.total_drift_events);
  if (include_process) out += obs::MetricsRegistry::global().scrape();
  return out;
}

}  // namespace leaf::serve
