#include "serve/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <map>
#include <optional>
#include <thread>
#include <utility>

#include "common/calendar.hpp"
#include "common/metrics.hpp"
#include "common/stats.hpp"
#include "core/scheme.hpp"
#include "io/serializer.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "par/parallel.hpp"
#include "simd/simd.hpp"

namespace leaf::serve {

namespace {

constexpr const char* kLegacyFleetFile = "fleet.leafsnap";

void write_ints(io::Serializer& out, const std::vector<int>& v) {
  out.put_ints(v);
}

std::string fmt6(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Path of snapshot generation `gen` (gen 0 = the legacy single-file name
/// from format v2 deployments, kept discoverable so resuming from one
/// fails with "unsupported format version" instead of "no snapshot").
std::string gen_path(const std::string& dir, std::uint64_t gen) {
  if (gen == 0) return (std::filesystem::path(dir) / kLegacyFleetFile).string();
  char name[40];
  std::snprintf(name, sizeof name, "fleet-%06llu.leafsnap",
                static_cast<unsigned long long>(gen));
  return (std::filesystem::path(dir) / name).string();
}

std::uint32_t read_le32(std::span<const std::uint8_t> b, std::size_t pos) {
  return static_cast<std::uint32_t>(b[pos]) |
         static_cast<std::uint32_t>(b[pos + 1]) << 8 |
         static_cast<std::uint32_t>(b[pos + 2]) << 16 |
         static_cast<std::uint32_t>(b[pos + 3]) << 24;
}

std::uint64_t read_le64(std::span<const std::uint8_t> b, std::size_t pos) {
  return static_cast<std::uint64_t>(read_le32(b, pos)) |
         static_cast<std::uint64_t>(read_le32(b, pos + 4)) << 32;
}

/// Walks an encoded LEAFSNAP container and returns the payload range of
/// the named section (chaos snapshot corruption flips a bit inside it).
std::optional<std::pair<std::size_t, std::size_t>> find_section_payload(
    std::span<const std::uint8_t> bytes, const std::string& name) {
  std::size_t pos = sizeof(io::kMagic) + 4;  // magic + version
  if (pos + 4 > bytes.size()) return std::nullopt;
  const std::uint32_t count = read_le32(bytes, pos);
  pos += 4;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (pos + 4 > bytes.size()) return std::nullopt;
    const std::uint32_t name_len = read_le32(bytes, pos);
    pos += 4;
    if (pos + name_len + 8 + 4 > bytes.size()) return std::nullopt;
    const std::string section_name(
        reinterpret_cast<const char*>(bytes.data() + pos), name_len);
    pos += name_len;
    const std::uint64_t payload_len = read_le64(bytes, pos);
    pos += 8 + 4;  // payload_len + crc
    if (pos + payload_len > bytes.size()) return std::nullopt;
    if (section_name == name && payload_len > 0)
      return std::make_pair(pos, static_cast<std::size_t>(payload_len));
    pos += payload_len;
  }
  return std::nullopt;
}

/// Thrown when a snapshot's meta section parses cleanly but describes a
/// different fleet than this runtime — a configuration error, never
/// something generation fallback should paper over.
class FleetMismatch : public io::SnapshotError {
 public:
  using io::SnapshotError::SnapshotError;
};

}  // namespace

const char* to_string(ShardHealth h) {
  switch (h) {
    case ShardHealth::kHealthy: return "healthy";
    case ShardHealth::kFaulted: return "faulted";
    case ShardHealth::kQuarantined: return "quarantined";
  }
  return "?";
}

/// One shard = one (KPI, model family, scheme) pipeline.  `step()` is the
/// loop body of core::run_scheme verbatim (uncached path, no ingest
/// guards), so a shard's EvalResult matches run_scheme exactly.
struct FleetRuntime::Shard {
  ShardSpec spec;
  int index = -1;  ///< position in the fleet; stamped on emitted events
  const data::Featurizer* featurizer = nullptr;
  double dispersion = 0.0;
  core::EvalConfig cfg;
  std::unique_ptr<models::Regressor> prototype;
  std::unique_ptr<core::MitigationScheme> scheme;

  // --- mutable per-step state (everything below is snapshotted) ---------
  models::FitCaches fit_caches;
  obs::EventLog events;  ///< single-writer: only this shard's step() emits
  std::unique_ptr<models::Regressor> model;
  drift::Kswin detector;
  Rng rng;
  data::SupervisedSet train;
  core::EvalResult result;
  std::vector<double> abs_ne_samples;
  int next_day = 0;
  int num_days = 0;
  double norm_range = 0.0;
  bool done = false;
  std::uint64_t steps = 0;
  // --- supervision state (also snapshotted) -----------------------------
  bool initialized = false;
  ShardHealth health = ShardHealth::kHealthy;
  int consecutive_failures = 0;
  int total_faults = 0;
  std::uint64_t backoff_until = 0;  ///< fleet step of the next retry
  std::string last_error;
  core::RetrainBreaker breaker;
  obs::EventLog supervision;  ///< single-writer, like `events`
  // Reusable aligned arena for the per-step prediction buffer (NOT
  // snapshotted: scratch only, sized by the high-water test-slice size).
  // Replaces a std::vector allocation per step per shard.
  simd::AlignedBuffer predict_scratch;

  Shard(ShardSpec s, const data::Featurizer& f, double disp,
        const core::EvalConfig& c, const Scale& scale,
        const core::BreakerConfig& bcfg)
      : spec(s),
        featurizer(&f),
        dispersion(disp),
        cfg(c),
        prototype(models::make_model(spec.model, scale, cfg.seed)),
        scheme(core::make_scheme(spec.scheme, disp, cfg.seed ^ 0x99)),
        detector(cfg.detector),
        rng(cfg.seed),
        breaker(bcfg) {}

  void emit_supervision(obs::EventKind kind, int day, std::string detail) {
    supervision.emit({kind, day, index, data::to_string(spec.kpi),
                      prototype->name(), scheme->name(), std::move(detail),
                      0.0});
  }

  /// Initial training, mirroring the run_scheme preamble.
  void init() {
    result = core::EvalResult{};
    result.scheme = scheme->name();
    result.model = prototype->name();

    const int anchor =
        cfg.anchor_day >= 0 ? cfg.anchor_day : cal::anchor_2018_07_01();
    norm_range = cfg.norm_range_override > 0.0 ? cfg.norm_range_override
                                               : featurizer->norm_range();
    num_days = featurizer->dataset().num_days();

    train = featurizer->window(anchor - cfg.train_window + 1, anchor);
    if (train.empty())
      throw std::runtime_error(
          "serve: shard training window produced no supervised pairs");
    model = prototype->clone_untrained();
    model->attach_caches(&fit_caches);
    {
      LEAF_SPAN("serve.init_fit");
      model->fit(train.X, train.y);
    }

    scheme->reset();
    detector.reset();
    rng = Rng(cfg.seed);
    abs_ne_samples.clear();
    events.clear();
    next_day = anchor + cfg.horizon;
    done = next_day >= num_days;
    steps = 0;
    health = ShardHealth::kHealthy;
    consecutive_failures = 0;
    total_faults = 0;
    backoff_until = 0;
    last_error.clear();
    breaker.reset();
    supervision.clear();
    initialized = true;
  }

  /// One evaluation step (the run_scheme loop body for day = next_day).
  /// `storm_retrain` is the chaos retrain-storm fault point: force a
  /// Triggered-style retrain request this step (gated by the breaker like
  /// any other request).
  void step(bool storm_retrain) {
    if (done) return;
    LEAF_SPAN("serve.step");
    static obs::Counter& steps_ctr =
        obs::MetricsRegistry::global().counter("leaf_eval_steps_total");
    static obs::Counter& scored_ctr =
        obs::MetricsRegistry::global().counter("leaf_eval_days_scored_total");
    static obs::Counter& skipped_ctr =
        obs::MetricsRegistry::global().counter("leaf_eval_days_skipped_total");
    static obs::Counter& nonfinite_ctr =
        obs::MetricsRegistry::global().counter("leaf_eval_nonfinite_total");
    static obs::Counter& drift_ctr =
        obs::MetricsRegistry::global().counter("leaf_drift_events_total");
    static obs::Counter& retrain_ctr =
        obs::MetricsRegistry::global().counter("leaf_retrains_total");
    static obs::Counter& suppressed_ctr = obs::MetricsRegistry::global().counter(
        "leaf_breaker_suppressed_retrains_total");
    static obs::Histogram& retrain_latency =
        obs::MetricsRegistry::global().histogram("leaf_retrain_latency_seconds",
                                                 obs::latency_buckets());
    ++steps;
    steps_ctr.inc();
    const int day = next_day;
    next_day += cfg.stride;
    if (next_day >= num_days) done = true;

    const auto emit = [&](obs::EventKind kind, std::string detail,
                          double seconds = 0.0) {
      events.emit({kind, day, index, data::to_string(spec.kpi), result.model,
                   result.scheme, std::move(detail), seconds});
    };

    const data::SupervisedSet test = featurizer->at_target_day(day);
    if (static_cast<int>(test.size()) < cfg.min_samples_per_day) {
      ++result.degraded.days_skipped;
      skipped_ctr.inc();
      return;
    }

    static obs::Counter& scratch_grows_ctr =
        obs::MetricsRegistry::global().counter(
            "leaf_shard_scratch_grows_total");
    static obs::Counter& scratch_reuses_ctr =
        obs::MetricsRegistry::global().counter(
            "leaf_shard_scratch_reuses_total");
    const bool scratch_grew = predict_scratch.reserve(test.size());
    (scratch_grew ? scratch_grows_ctr : scratch_reuses_ctr).inc();
    const std::span<double> pred = predict_scratch.acquire(test.size());
    model->predict_into(test.X, pred);
    const double err = metrics::nrmse(pred, test.y, norm_range);
    if (cfg.guard_nonfinite && !std::isfinite(err)) {
      ++result.degraded.nonfinite_errors;
      nonfinite_ctr.inc();
      emit(obs::EventKind::kNonFinite, "rows=" + std::to_string(test.size()));
      return;
    }
    scored_ctr.inc();

    double ne_acc = 0.0;
    std::size_t ne_count = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
      const double ne =
          metrics::normalized_error(pred[i], test.y[i], norm_range);
      if (cfg.guard_nonfinite && !std::isfinite(ne)) continue;
      ne_acc += ne;
      ++ne_count;
      abs_ne_samples.push_back(std::abs(ne));
    }

    result.days.push_back(day);
    result.nrmse.push_back(err);
    result.mean_ne.push_back(
        ne_count > 0 ? ne_acc / static_cast<double>(ne_count) : 0.0);

    const bool drift = detector.update(err);
    if (drift) {
      result.drift_days.push_back(day);
      drift_ctr.inc();
      emit(obs::EventKind::kDrift,
           "detector=KSWIN,p=" + fmt6(detector.last_p_value()) +
               ",nrmse=" + fmt6(err));
    }

    core::SchemeContext ctx{.featurizer = *featurizer,
                            .model = *model,
                            .current_train = train,
                            .eval_day = day,
                            .nrmse = err,
                            .drift = drift,
                            .train_window = cfg.train_window,
                            .rng = &rng,
                            .prototype = prototype.get(),
                            .cache = nullptr,
                            .events = &events,
                            .shard = index};
    const double retrain_t0 = obs::enabled() ? obs::monotonic_seconds() : 0.0;
    std::optional<data::SupervisedSet> new_train = scheme->on_step(ctx);
    std::unique_ptr<models::Regressor> replacement =
        scheme->take_replacement_model();
    if (storm_retrain && replacement == nullptr &&
        (!new_train.has_value() || new_train->empty())) {
      data::SupervisedSet forced =
          core::latest_labeled_window(ctx, cfg.train_window);
      if (!forced.empty()) new_train = std::move(forced);
    }

    const bool wants_retrain =
        replacement != nullptr || (new_train.has_value() && !new_train->empty());
    if (!wants_retrain) return;

    // Retrain circuit breaker: a storm of requests inside the sliding
    // window trips it OPEN and the shard keeps serving its frozen model
    // (counted like the ingest OUTAGE freeze).  Disabled by default.
    using BState = core::RetrainBreaker::State;
    const BState before = breaker.state();
    const bool allowed = breaker.allow(day);
    const BState after = breaker.state();
    if (before == BState::kOpen && after != BState::kOpen)
      emit_supervision(obs::EventKind::kBreakerHalfOpen, day,
                       "cooldown over, probe retrain");
    if (after == BState::kOpen && before != BState::kOpen)
      emit_supervision(obs::EventKind::kBreakerOpen, day,
                       "max_retrains=" +
                           std::to_string(breaker.config().max_retrains) +
                           ",window_days=" +
                           std::to_string(breaker.config().window_days) +
                           ",open_until_day=" +
                           std::to_string(breaker.open_until()));
    if (after == BState::kClosed && before == BState::kOpen)
      emit_supervision(obs::EventKind::kBreakerClose, day,
                       "probe retrain allowed");
    if (!allowed) {
      ++result.degraded.suppressed_retrains;
      suppressed_ctr.inc();
      return;
    }

    bool retrained = false;
    if (replacement != nullptr) {
      model = std::move(replacement);
      result.retrain_days.push_back(day);
      retrained = true;
    } else {
      train = std::move(*new_train);
      model = prototype->clone_untrained();
      model->attach_caches(&fit_caches);
      {
        LEAF_SPAN("serve.retrain_fit");
        model->fit(train.X, train.y);
      }
      result.retrain_days.push_back(day);
      retrained = true;
    }
    if (retrained) {
      const double secs =
          obs::enabled() ? obs::monotonic_seconds() - retrain_t0 : 0.0;
      retrain_ctr.inc();
      retrain_latency.observe(secs);
      obs::MetricsRegistry::global()
          .latency("leaf_shard_retrain_seconds",
                   obs::label("shard", std::to_string(index)))
          .observe(secs);
      emit(obs::EventKind::kRetrain,
           "train_rows=" + std::to_string(train.size()), secs);
    }
  }

  core::EvalResult finalized_result() const {
    core::EvalResult out = result;
    out.ne_p95 = abs_ne_samples.empty()
                     ? 0.0
                     : stats::quantile(abs_ne_samples, 0.95);
    return out;
  }

  void save(io::Serializer& out) const {
    // Format v3: supervision state leads, so even a shard that never
    // initialized (init threw, quarantined) snapshots cleanly.
    out.put_bool(initialized);
    out.put_u8(static_cast<std::uint8_t>(health));
    out.put_i32(consecutive_failures);
    out.put_i32(total_faults);
    out.put_u64(backoff_until);
    out.put_string(last_error);
    breaker.save_state(out);
    supervision.save(out);
    if (!initialized) return;

    io::write(out, rng);
    detector.save_state(out);
    scheme->save_state(out);
    models::save_regressor(out, *model);
    fit_caches.bin_edges.save(out);
    io::write(out, train);
    out.put_i32(next_day);
    out.put_i32(num_days);
    out.put_f64(norm_range);
    out.put_bool(done);
    out.put_u64(steps);
    write_ints(out, result.days);
    out.put_doubles(result.nrmse);
    out.put_doubles(result.mean_ne);
    write_ints(out, result.retrain_days);
    write_ints(out, result.drift_days);
    out.put_i32(result.degraded.days_skipped);
    out.put_i32(result.degraded.nonfinite_errors);
    out.put_i32(result.degraded.frozen_detector_days);
    out.put_i32(result.degraded.suppressed_retrains);
    out.put_i64(result.degraded.values_imputed);
    out.put_i64(result.degraded.quarantined_records);
    out.put_doubles(abs_ne_samples);
    // Format v2: the shard's event log rides along, so a resumed run's
    // merged event stream is identical to an uninterrupted one.
    events.save(out);
  }

  /// Fully parsed shard state, applied only after the whole snapshot
  /// parses cleanly (no partial restore).
  struct Restored {
    bool initialized = false;
    ShardHealth health = ShardHealth::kHealthy;
    int consecutive_failures = 0;
    int total_faults = 0;
    std::uint64_t backoff_until = 0;
    std::string last_error;
    core::RetrainBreaker breaker;
    obs::EventLog supervision;
    Rng::State rng;
    std::unique_ptr<drift::Kswin> detector;
    std::unique_ptr<core::MitigationScheme> scheme;
    std::unique_ptr<models::Regressor> model;
    models::BinEdgeCache bin_edges;
    data::SupervisedSet train;
    int next_day = 0;
    int num_days = 0;
    double norm_range = 0.0;
    bool done = false;
    std::uint64_t steps = 0;
    core::EvalResult result;
    std::vector<double> abs_ne_samples;
    obs::EventLog events;
  };

  Restored parse(io::Deserializer& in) const {
    Restored r;
    r.initialized = in.get_bool();
    const std::uint8_t health = in.get_u8();
    if (health > static_cast<std::uint8_t>(ShardHealth::kQuarantined))
      throw io::SnapshotError("shard: unknown health state " +
                              std::to_string(static_cast<int>(health)));
    r.health = static_cast<ShardHealth>(health);
    r.consecutive_failures = in.get_i32();
    r.total_faults = in.get_i32();
    r.backoff_until = in.get_u64();
    r.last_error = in.get_string();
    r.breaker = core::RetrainBreaker(breaker.config());
    r.breaker.load_state(in);
    r.supervision.load(in);
    if (!r.initialized) {
      if (r.health != ShardHealth::kQuarantined)
        throw io::SnapshotError(
            "shard snapshotted uninitialized but not quarantined");
      if (!in.exhausted())
        throw io::SnapshotError("trailing bytes after shard state");
      return r;
    }

    Rng tmp_rng(cfg.seed);
    io::read_rng(in, tmp_rng);
    r.rng = tmp_rng.capture();
    r.detector = std::make_unique<drift::Kswin>(cfg.detector);
    r.detector->load_state(in);
    r.scheme = core::make_scheme(spec.scheme, dispersion, cfg.seed ^ 0x99);
    r.scheme->reset();
    r.scheme->load_state(in);
    r.model = models::load_regressor(in);
    if (r.model->name() != prototype->name())
      throw io::SnapshotError("shard model family mismatch: snapshot has '" +
                              r.model->name() + "', runtime expects '" +
                              prototype->name() + "'");
    r.bin_edges.load(in);
    r.train = io::read_supervised_set(in);
    r.next_day = in.get_i32();
    r.num_days = in.get_i32();
    r.norm_range = in.get_f64();
    r.done = in.get_bool();
    r.steps = in.get_u64();
    r.result.scheme = r.scheme->name();
    r.result.model = prototype->name();
    r.result.days = in.get_ints();
    r.result.nrmse = in.get_doubles();
    r.result.mean_ne = in.get_doubles();
    r.result.retrain_days = in.get_ints();
    r.result.drift_days = in.get_ints();
    r.result.degraded.days_skipped = in.get_i32();
    r.result.degraded.nonfinite_errors = in.get_i32();
    r.result.degraded.frozen_detector_days = in.get_i32();
    r.result.degraded.suppressed_retrains = in.get_i32();
    r.result.degraded.values_imputed = in.get_i64();
    r.result.degraded.quarantined_records = in.get_i64();
    r.abs_ne_samples = in.get_doubles();
    r.events.load(in);
    if (!in.exhausted())
      throw io::SnapshotError("trailing bytes after shard state");
    if (r.result.nrmse.size() != r.result.days.size() ||
        r.result.mean_ne.size() != r.result.days.size())
      throw io::SnapshotError("shard result series have inconsistent sizes");
    return r;
  }

  void apply(Restored&& r) {
    initialized = r.initialized;
    health = r.health;
    consecutive_failures = r.consecutive_failures;
    total_faults = r.total_faults;
    backoff_until = r.backoff_until;
    last_error = std::move(r.last_error);
    breaker = std::move(r.breaker);
    supervision = std::move(r.supervision);
    if (!initialized) return;
    rng.restore(r.rng);
    detector = std::move(*r.detector);
    scheme = std::move(r.scheme);
    model = std::move(r.model);
    fit_caches.bin_edges = std::move(r.bin_edges);
    model->attach_caches(&fit_caches);
    train = std::move(r.train);
    next_day = r.next_day;
    num_days = r.num_days;
    norm_range = r.norm_range;
    done = r.done;
    steps = r.steps;
    result = std::move(r.result);
    abs_ne_samples = std::move(r.abs_ne_samples);
    events = std::move(r.events);
  }
};

FleetRuntime::FleetRuntime(const data::CellularDataset& ds, const Scale& scale,
                           std::vector<ShardSpec> specs,
                           std::uint64_t fleet_seed,
                           SupervisorConfig supervisor)
    : ds_(&ds), scale_(scale), specs_(std::move(specs)),
      fleet_seed_(fleet_seed), supervisor_(std::move(supervisor)),
      chaos_(supervisor_.chaos) {
  if (specs_.empty())
    throw std::invalid_argument("FleetRuntime: at least one shard required");
  if (supervisor_.snapshot_keep < 1)
    throw std::invalid_argument("FleetRuntime: snapshot_keep must be >= 1");

  // One featurizer (and dispersion) per distinct KPI, shared read-only by
  // the shards forecasting it.
  std::map<data::TargetKpi, std::pair<const data::Featurizer*, double>> by_kpi;
  for (const ShardSpec& spec : specs_) {
    if (by_kpi.count(spec.kpi)) continue;
    featurizers_.push_back(std::make_unique<data::Featurizer>(ds, spec.kpi));
    by_kpi[spec.kpi] = {featurizers_.back().get(),
                        core::kpi_dispersion(ds, spec.kpi)};
  }

  // Per-shard seeds: explicit when given, otherwise a counter-based
  // substream of the fleet seed — order-independent, so the derivation is
  // identical no matter how shards are scheduled.
  const Rng fleet_rng(fleet_seed_);
  shards_.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const ShardSpec& spec = specs_[i];
    std::uint64_t seed = spec.seed;
    if (seed == 0) seed = fleet_rng.substream(i)();
    const auto [featurizer, dispersion] = by_kpi[spec.kpi];
    core::EvalConfig cfg = core::make_eval_config(scale_, seed);
    shards_.push_back(std::make_unique<Shard>(spec, *featurizer, dispersion,
                                              cfg, scale_,
                                              supervisor_.breaker));
    shards_.back()->index = static_cast<int>(i);
  }
}

FleetRuntime::~FleetRuntime() = default;

bool FleetRuntime::done() const {
  for (const auto& s : shards_)
    if (!s->done && s->health != ShardHealth::kQuarantined) return false;
  return true;
}

void FleetRuntime::handle_shard_failure(Shard& shard,
                                        std::uint64_t fleet_step,
                                        const char* what) {
  static obs::Counter& faults_ctr =
      obs::MetricsRegistry::global().counter("leaf_shard_faults_total");
  static obs::Counter& quarantine_ctr =
      obs::MetricsRegistry::global().counter("leaf_shard_quarantines_total");
  ++shard.consecutive_failures;
  ++shard.total_faults;
  shard.last_error = what;
  faults_ctr.inc();
  const std::string context =
      "fleet_step=" + std::to_string(fleet_step) +
      ",failures=" + std::to_string(shard.consecutive_failures) +
      ",error=" + shard.last_error;
  if (!shard.initialized ||
      shard.consecutive_failures > supervisor_.recovery.max_retries) {
    // Init failures are configuration/data problems a retry cannot fix;
    // step failures escalate once the retry budget is spent.
    shard.health = ShardHealth::kQuarantined;
    quarantine_ctr.inc();
    shard.emit_supervision(obs::EventKind::kShardQuarantined, shard.next_day,
                           context);
    LEAF_LOG_ERROR("serve: shard %d quarantined (%s)", shard.index,
                   context.c_str());
  } else {
    shard.health = ShardHealth::kFaulted;
    const std::uint64_t backoff =
        static_cast<std::uint64_t>(supervisor_.recovery.backoff_base_steps)
        << (shard.consecutive_failures - 1);
    shard.backoff_until = fleet_step + 1 + backoff;
    shard.emit_supervision(
        obs::EventKind::kShardFaulted, shard.next_day,
        context + ",retry_at_step=" + std::to_string(shard.backoff_until));
    LEAF_LOG_WARN("serve: shard %d faulted, retry at fleet step %llu (%s)",
                  shard.index,
                  static_cast<unsigned long long>(shard.backoff_until),
                  context.c_str());
  }
}

void FleetRuntime::start() {
  if (started_) return;
  started_ = true;
  par::parallel_for(shards_.size(), [&](std::size_t i) {
    try {
      shards_[i]->init();
    } catch (const std::exception& e) {
      handle_shard_failure(*shards_[i], 0, e.what());
    }
  });
}

void FleetRuntime::step_shard(Shard& shard, std::uint64_t fleet_step) {
  static obs::Counter& recovered_ctr =
      obs::MetricsRegistry::global().counter("leaf_shard_recoveries_total");
  if (shard.done || !shard.initialized ||
      shard.health == ShardHealth::kQuarantined)
    return;
  if (shard.health == ShardHealth::kFaulted &&
      fleet_step < shard.backoff_until)
    return;  // waiting out the backoff
  try {
    bool storm = false;
    if (chaos_.enabled()) {
      if (chaos_.slow_step(shard.index, fleet_step))
        std::this_thread::sleep_for(
            std::chrono::milliseconds(chaos_.config().slow_ms));
      if (chaos_.throw_step(shard.index, fleet_step))
        throw chaos::Fault("injected step fault (shard " +
                           std::to_string(shard.index) + ", fleet step " +
                           std::to_string(fleet_step) + ")");
      storm = chaos_.retrain_storm(shard.index, fleet_step);
    }
    {
      const obs::Stopwatch sw;
      shard.step(storm);
      obs::MetricsRegistry::global()
          .latency("leaf_shard_step_seconds",
                   obs::label("shard", std::to_string(shard.index)))
          .observe(sw.seconds());
    }
    if (shard.health == ShardHealth::kFaulted) {
      shard.health = ShardHealth::kHealthy;
      shard.consecutive_failures = 0;
      recovered_ctr.inc();
      shard.emit_supervision(
          obs::EventKind::kShardRecovered, shard.next_day,
          "fleet_step=" + std::to_string(fleet_step) +
              ",after_failures=" + std::to_string(shard.total_faults));
      LEAF_LOG_INFO("serve: shard %d recovered at fleet step %llu",
                    shard.index, static_cast<unsigned long long>(fleet_step));
    }
  } catch (const std::exception& e) {
    handle_shard_failure(shard, fleet_step, e.what());
  }
}

bool FleetRuntime::step() {
  start();
  if (done()) return false;
  const std::uint64_t fleet_step = steps_run_;
  par::parallel_for(shards_.size(),
                    [&](std::size_t i) { step_shard(*shards_[i], fleet_step); });
  ++steps_run_;
  // Serial epilogue: sample fleet telemetry into the embedded store.  The
  // parallel phase is over, so the sample is a pure function of the
  // post-step fleet state — bit-identical at any LEAF_THREADS.
  sample_telemetry();
  return !done();
}

void FleetRuntime::record_net_deltas(std::uint64_t tick) {
  // Net-plane counters are process-lifetime registry state, so their
  // per-tick deltas depend on process history (a resumed process restarts
  // the baselines): stored for operators, excluded from fingerprint().
  static constexpr const char* kNetCounters[] = {
      "leaf_net_requests_total",  "leaf_net_responses_total",
      "leaf_net_sheds_total",     "leaf_net_retries_total",
      "leaf_net_errors_total",    "leaf_net_malformed_frames_total",
  };
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  if (net_baselines_.empty()) {
    for (const char* name : kNetCounters)
      net_baselines_.push_back(
          {name, static_cast<double>(reg.counter(name).value())});
  }
  double requests = 0.0;
  double sheds = 0.0;
  double retries = 0.0;
  for (NetBaseline& b : net_baselines_) {
    const double now = static_cast<double>(reg.counter(b.metric).value());
    const double delta = now - b.last;
    b.last = now;
    tsdb_.record(b.metric + "_per_tick", "", tick, delta,
                 /*deterministic=*/false);
    if (b.metric == "leaf_net_requests_total") requests = delta;
    else if (b.metric == "leaf_net_sheds_total") sheds = delta;
    else if (b.metric == "leaf_net_retries_total") retries = delta;
  }
  // Recording rules: deadline-miss and shed rates per tick.  Sheds fire
  // exactly when a request's deadline lapsed in queue, so the shed delta
  // *is* the deadline-miss count; the shed rate also folds in RETRYs.
  const double denom = requests > 0.0 ? requests : 1.0;
  const double miss_rate = sheds / denom;
  const double shed_rate = (sheds + retries) / denom;
  tsdb_.record("leaf_rule_deadline_miss_rate", "", tick, miss_rate,
               /*deterministic=*/false);
  tsdb_.record("leaf_rule_shed_rate", "", tick, shed_rate,
               /*deterministic=*/false);
  meta_drift_.observe("deadline_miss_rate", -1, tick, miss_rate);
  meta_drift_.observe("shed_rate", -1, tick, shed_rate);
}

void FleetRuntime::sample_telemetry() {
  if constexpr (!obs::kCompiledIn) return;
  const std::uint64_t tick = sample_tick_++;
  // A chaos tsdb-gap skips the sample but the tick still advanced, so the
  // gap is visible (and deterministic) in every stored series.
  if (chaos_.enabled() && chaos_.tsdb_gap(tick)) return;

  // Deterministic series: pure functions of shard state, resume-safe.
  double quarantined = 0.0;
  double faults = 0.0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = *shards_[i];
    const std::string labels = obs::label("shard", std::to_string(i));
    if (!s.result.nrmse.empty()) {
      const double nrmse = s.result.nrmse.back();
      tsdb_.record("leaf_fleet_shard_nrmse", labels, tick, nrmse);
      meta_drift_.observe("shard" + std::to_string(i) + "_nrmse",
                          static_cast<int>(i), tick, nrmse);
    }
    tsdb_.record("leaf_fleet_shard_health", labels, tick,
                 static_cast<double>(s.health));
    tsdb_.record("leaf_fleet_shard_retrains", labels, tick,
                 static_cast<double>(s.result.retrain_count()));
    tsdb_.record("leaf_fleet_shard_drift_events", labels, tick,
                 static_cast<double>(s.result.drift_days.size()));
    tsdb_.record("leaf_fleet_shard_days_evaluated", labels, tick,
                 static_cast<double>(s.result.days.size()));
    if (s.health == ShardHealth::kQuarantined) quarantined += 1.0;
    faults += static_cast<double>(s.total_faults);
  }
  tsdb_.record("leaf_fleet_steps", "", tick,
               static_cast<double>(steps_run_));
  tsdb_.record("leaf_fleet_avg_nrmse", "", tick, current_avg_nrmse());
  tsdb_.record("leaf_fleet_shards_quarantined", "", tick, quarantined);
  tsdb_.record("leaf_fleet_faults", "", tick, faults);
  const double qrate =
      shards_.empty() ? 0.0
                      : quarantined / static_cast<double>(shards_.size());
  tsdb_.record("leaf_rule_quarantine_rate", "", tick, qrate);
  meta_drift_.observe("quarantine_rate", -1, tick, qrate);

  // Volatile net-plane deltas + their recording rules.
  record_net_deltas(tick);

  obs::MetricsRegistry::global()
      .gauge("leaf_telemetry_drift_state")
      .set(static_cast<double>(meta_drift_.state(sample_tick_)));
}

std::uint64_t FleetRuntime::run_to_end() {
  std::uint64_t n = 0;
  start();
  while (!done()) {
    step();
    ++n;
  }
  return n;
}

std::uint64_t FleetRuntime::run_steps(std::uint64_t n) {
  std::uint64_t ran = 0;
  start();
  for (; ran < n && !done(); ++ran) step();
  return ran;
}

std::vector<std::uint64_t> FleetRuntime::snapshot_generations(
    const std::string& dir) {
  std::vector<std::uint64_t> gens;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name == kLegacyFleetFile) {
      gens.push_back(0);
      continue;
    }
    unsigned long long gen = 0;
    int consumed = 0;
    if (std::sscanf(name.c_str(), "fleet-%llu.leafsnap%n", &gen,
                    &consumed) == 1 &&
        consumed == static_cast<int>(name.size()) && gen > 0)
      gens.push_back(gen);
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

bool FleetRuntime::has_snapshot(const std::string& dir) {
  return !snapshot_generations(dir).empty();
}

std::uint64_t FleetRuntime::snapshot(const std::string& dir) {
  if (!started_)
    throw io::SnapshotError("cannot snapshot before the fleet has started");
  static obs::Counter& failures_ctr =
      obs::MetricsRegistry::global().counter("leaf_snapshot_failures_total");
  // An unwritable directory is a write failure like any other: logged and
  // counted below, never fatal to the fleet.
  std::error_code dir_ec;
  std::filesystem::create_directories(dir, dir_ec);
  if (dir_ec) {
    failures_ctr.inc();
    LEAF_LOG_ERROR("serve: cannot create snapshot dir '%s': %s", dir.c_str(),
                   dir_ec.message().c_str());
    return 0;
  }
  io::SnapshotWriter writer;

  io::Serializer& meta = writer.section("meta");
  meta.put_u64(fleet_seed_);
  meta.put_u64(steps_run_);
  meta.put_u64(shards_.size());
  for (const auto& shard : shards_) {
    meta.put_string(data::to_string(shard->spec.kpi));
    meta.put_string(models::to_string(shard->spec.model));
    meta.put_string(shard->spec.scheme);
    meta.put_u64(shard->cfg.seed);
  }

  for (std::size_t i = 0; i < shards_.size(); ++i)
    shards_[i]->save(writer.section("shard" + std::to_string(i)));

  // v4: the telemetry store + meta-drift detector state ride along, so a
  // resumed run's stored series and detection trajectory continue
  // byte-identically.
  io::Serializer& ts = writer.section("tsdb");
  ts.put_u64(sample_tick_);
  tsdb_.save(ts);
  meta_drift_.save(ts);

  // Generation counter advances even when the write fails: the failed
  // generation number is burned, like a crashed deployment's would be.
  const std::uint64_t gen = ++snapshot_gen_;
  const std::string path = gen_path(dir, gen);

  std::vector<std::uint8_t> bytes = writer.encode();
  if (chaos_.enabled() && chaos_.corrupt_snapshot(gen)) {
    const int target =
        chaos_.corrupt_target(shards_.size(), gen);
    const auto payload = find_section_payload(
        bytes, "shard" + std::to_string(target));
    if (payload.has_value()) {
      bytes[payload->first + payload->second / 2] ^= 0x01;
      LEAF_LOG_WARN("serve: chaos corrupted shard %d in snapshot gen %llu",
                    target, static_cast<unsigned long long>(gen));
    }
  }

  const obs::Stopwatch sw;
  std::uint64_t written = 0;
  try {
    std::optional<io::ScopedWriteFault> fault;
    if (chaos_.enabled() && chaos_.partial_write(gen))
      fault.emplace(bytes.size() / 2);
    written = io::SnapshotWriter::write_bytes(path, bytes);
  } catch (const io::SnapshotError& e) {
    // A failed snapshot must not take the fleet down: serving continues on
    // the previous generations.
    failures_ctr.inc();
    LEAF_LOG_ERROR("serve: snapshot gen %llu failed: %s",
                   static_cast<unsigned long long>(gen), e.what());
    return 0;
  }
  const double secs = sw.seconds();

  // Retention: keep the newest snapshot_keep generations.
  const std::vector<std::uint64_t> gens = snapshot_generations(dir);
  if (gens.size() > static_cast<std::size_t>(supervisor_.snapshot_keep)) {
    const std::size_t drop =
        gens.size() - static_cast<std::size_t>(supervisor_.snapshot_keep);
    for (std::size_t i = 0; i < drop; ++i) {
      std::error_code ec;
      std::filesystem::remove(gen_path(dir, gens[i]), ec);
    }
  }

  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.counter("leaf_snapshots_total").inc();
  reg.histogram("leaf_snapshot_write_seconds", obs::latency_buckets())
      .observe(secs);
  reg.latency("leaf_snapshot_seconds").observe(secs);
  reg.gauge("leaf_snapshot_bytes").set(static_cast<double>(written));
  // Operational message: deliberately NOT an event-log entry, or a resumed
  // run's event stream could never match an uninterrupted one.
  LEAF_LOG_INFO("serve: snapshot gen %llu at step %llu -> %s (%llu bytes)",
                static_cast<unsigned long long>(gen),
                static_cast<unsigned long long>(steps_run_), dir.c_str(),
                static_cast<unsigned long long>(written));
  return written;
}

void FleetRuntime::restore(const std::string& dir) {
  const std::vector<std::uint64_t> gens_asc = snapshot_generations(dir);
  if (gens_asc.empty())
    throw io::SnapshotError("no snapshot generations in '" + dir + "'");

  // Walk generations newest-first.  The newest generation with a valid,
  // matching meta section anchors steps_run; each shard restores from the
  // newest generation whose section parses, falling back per shard.
  std::vector<std::optional<Shard::Restored>> restored(shards_.size());
  std::vector<std::uint64_t> restored_gen(shards_.size(), 0);
  bool meta_ok = false;
  std::uint64_t anchor_gen = 0;
  std::uint64_t steps_run = 0;
  bool tsdb_ok = false;
  tsdb::Store restored_store(tsdb_.config());
  tsdb::MetaDrift restored_md(meta_drift_.config());
  std::uint64_t restored_tick = 0;
  std::string first_error;
  std::size_t remaining = shards_.size();
  const auto note_error = [&first_error](const std::string& what) {
    if (first_error.empty()) first_error = what;
  };

  for (auto it = gens_asc.rbegin(); it != gens_asc.rend() && remaining > 0;
       ++it) {
    const std::uint64_t gen = *it;
    std::optional<io::SnapshotReader> reader;
    try {
      reader.emplace(io::SnapshotReader::from_file(
          gen_path(dir, gen), io::SnapshotReader::ReadMode::kLenient));
    } catch (const io::SnapshotError& e) {
      note_error(e.what());  // unreadable container (magic/version/short)
      continue;
    }
    std::uint64_t gen_steps = 0;
    try {
      io::Deserializer meta = reader->section("meta");
      if (meta.get_u64() != fleet_seed_)
        throw FleetMismatch(
            "fleet seed mismatch between snapshot and runtime");
      gen_steps = meta.get_u64();
      if (meta.get_u64() != shards_.size())
        throw FleetMismatch(
            "shard count mismatch between snapshot and runtime");
      for (const auto& shard : shards_) {
        const std::string kpi = meta.get_string();
        const std::string model = meta.get_string();
        const std::string scheme = meta.get_string();
        const std::uint64_t seed = meta.get_u64();
        if (kpi != data::to_string(shard->spec.kpi) ||
            model != models::to_string(shard->spec.model) ||
            scheme != shard->spec.scheme || seed != shard->cfg.seed)
          throw FleetMismatch(
              "shard configuration mismatch between snapshot and runtime "
              "(snapshot: " + kpi + "/" + model + "/" + scheme + ")");
      }
    } catch (const FleetMismatch&) {
      throw;  // a *different* fleet is never something fallback repairs
    } catch (const io::SnapshotError& e) {
      note_error(e.what());  // damaged meta: this generation is unusable
      continue;
    }
    if (!meta_ok) {
      meta_ok = true;
      anchor_gen = gen;
      steps_run = gen_steps;
      // Telemetry rides with the anchor generation only (mixing store
      // history across generations would fabricate a timeline no run
      // produced).  A v3 file has no "tsdb" section and a damaged one is
      // demoted by the lenient reader: both restore as an empty store —
      // telemetry loss is never fatal to the fleet.
      if (reader->has("tsdb")) {
        try {
          io::Deserializer ts = reader->section("tsdb");
          restored_tick = ts.get_u64();
          restored_store.load(ts);
          restored_md.load(ts);
          tsdb_ok = true;
        } catch (const io::SnapshotError& e) {
          note_error(std::string("tsdb section: ") + e.what());
        }
      }
    }
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (restored[i].has_value()) continue;
      try {
        io::Deserializer in = reader->section("shard" + std::to_string(i));
        restored[i] = shards_[i]->parse(in);
        restored_gen[i] = gen;
        --remaining;
      } catch (const io::SnapshotError& e) {
        note_error("shard " + std::to_string(i) + " gen " +
                   std::to_string(gen) + ": " + e.what());
      }
    }
  }

  if (!meta_ok)
    throw io::SnapshotError("no readable snapshot generation in '" + dir +
                            "' (" + first_error + ")");
  if (remaining > 0) {
    std::string missing;
    for (std::size_t i = 0; i < shards_.size(); ++i)
      if (!restored[i].has_value())
        missing += (missing.empty() ? "" : ",") + std::to_string(i);
    throw io::SnapshotError("shard(s) " + missing +
                            " unreadable in every retained generation (" +
                            first_error + ")");
  }

  // Only a fully restorable fleet mutates the runtime.
  for (std::size_t i = 0; i < shards_.size(); ++i)
    shards_[i]->apply(std::move(*restored[i]));
  steps_run_ = steps_run;
  started_ = true;
  snapshot_gen_ = gens_asc.back();
  if (tsdb_ok) {
    tsdb_ = std::move(restored_store);
    meta_drift_ = std::move(restored_md);
    sample_tick_ = restored_tick;
  } else {
    tsdb_.clear();
    meta_drift_.clear();
    sample_tick_ = steps_run_;  // ticks re-anchor to the step boundary
  }
  // Net-delta baselines are process state, never snapshot state: a
  // resumed process restarts them at the current counter values.
  net_baselines_.clear();

  int fallbacks = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (restored_gen[i] == anchor_gen) continue;
    ++fallbacks;
    shards_[i]->emit_supervision(
        obs::EventKind::kSnapshotFallback, -1,
        "gen=" + std::to_string(restored_gen[i]) +
            ",newest=" + std::to_string(anchor_gen));
    LEAF_LOG_WARN("serve: shard %zu fell back to snapshot gen %llu "
                  "(newest %llu damaged)",
                  i, static_cast<unsigned long long>(restored_gen[i]),
                  static_cast<unsigned long long>(anchor_gen));
  }
  snapshot_fallbacks_ = fallbacks;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  if (fallbacks > 0)
    reg.counter("leaf_snapshot_fallbacks_total")
        .inc(static_cast<std::uint64_t>(fallbacks));
  reg.counter("leaf_restores_total").inc();
  LEAF_LOG_INFO("serve: restored %zu shards at step %llu from %s (gen %llu)",
                shards_.size(), static_cast<unsigned long long>(steps_run_),
                dir.c_str(), static_cast<unsigned long long>(anchor_gen));
}

std::vector<core::EvalResult> FleetRuntime::results() const {
  std::vector<core::EvalResult> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->finalized_result());
  return out;
}

ServeStats FleetRuntime::stats() const {
  ServeStats stats;
  stats.total_steps = steps_run_;
  stats.snapshot_fallbacks = snapshot_fallbacks_;
  for (const auto& shard : shards_) {
    ShardStats s;
    s.kpi = data::to_string(shard->spec.kpi);
    s.model = shard->prototype->name();
    s.scheme = shard->scheme->name();
    s.steps = shard->steps;
    s.days_evaluated = static_cast<int>(shard->result.days.size());
    s.retrains = shard->result.retrain_count();
    s.drift_events = static_cast<int>(shard->result.drift_days.size());
    s.days_skipped = shard->result.degraded.days_skipped;
    s.nonfinite_errors = shard->result.degraded.nonfinite_errors;
    s.next_day = shard->next_day;
    s.done = shard->done;
    s.health = shard->health;
    s.faults = shard->total_faults;
    s.consecutive_failures = shard->consecutive_failures;
    s.backoff_until = shard->backoff_until;
    s.last_error = shard->last_error;
    s.breaker_state = shard->breaker.state_name();
    s.breaker_trips = shard->breaker.trips();
    s.suppressed_retrains = shard->result.degraded.suppressed_retrains;
    stats.total_retrains += s.retrains;
    stats.total_drift_events += s.drift_events;
    stats.total_faults += s.faults;
    stats.total_breaker_trips += s.breaker_trips;
    stats.total_suppressed_retrains += s.suppressed_retrains;
    if (s.done) ++stats.shards_done;
    if (s.health == ShardHealth::kQuarantined) ++stats.shards_quarantined;
    stats.shards.push_back(std::move(s));
  }
  return stats;
}

bool FleetRuntime::shard_ready(std::size_t i) const {
  const Shard& shard = *shards_.at(i);
  return shard.initialized && shard.health != ShardHealth::kQuarantined &&
         shard.model != nullptr && shard.model->trained();
}

int FleetRuntime::shard_num_features(std::size_t i) const {
  return shards_.at(i)->featurizer->num_features();
}

void FleetRuntime::predict_shard(std::size_t i, const Matrix& X,
                                 std::span<double> out) const {
  const Shard& shard = *shards_.at(i);
  if (!shard_ready(i))
    throw std::runtime_error("serve: shard " + std::to_string(i) +
                             " is not ready to serve predictions (" +
                             to_string(shard.health) + ")");
  if (static_cast<int>(X.cols()) != shard.featurizer->num_features())
    throw std::invalid_argument(
        "serve: predict expects " +
        std::to_string(shard.featurizer->num_features()) +
        " features, got " + std::to_string(X.cols()));
  if (out.size() != X.rows())
    throw std::invalid_argument("serve: predict output size mismatch");
  shard.model->predict_into(X, out);
}

void FleetRuntime::predict_shard(std::size_t i, const Matrix& X,
                                 std::span<double> out,
                                 obs::SpanCollector* spans) const {
  std::size_t span = 0;
  if (spans != nullptr) {
    span = spans->begin("shard-predict", static_cast<int>(i) + 1);
    spans->annotate(span, "\"shard\": " + std::to_string(i) +
                              ", \"rows\": " + std::to_string(X.rows()));
  }
  const obs::Stopwatch sw;
  predict_shard(i, X, out);
  obs::MetricsRegistry::global()
      .latency("leaf_shard_predict_seconds",
               obs::label("shard", std::to_string(i)))
      .observe(sw.seconds());
  if (spans != nullptr) spans->end(span);
}

double FleetRuntime::current_avg_nrmse() const {
  double acc = 0.0;
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    if (shard->result.nrmse.empty()) continue;
    const double err = shard->result.nrmse.back();
    if (!std::isfinite(err)) continue;
    acc += err;
    ++n;
  }
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  return acc / static_cast<double>(n);
}

std::vector<obs::Event> FleetRuntime::merged_events() const {
  std::vector<const obs::EventLog*> logs;
  logs.reserve(shards_.size());
  for (const auto& shard : shards_) logs.push_back(&shard->events);
  return obs::EventLog::merge(logs);
}

std::string FleetRuntime::events_jsonl(bool with_timing) const {
  return obs::EventLog::to_jsonl(merged_events(), with_timing);
}

std::vector<obs::Event> FleetRuntime::supervision_events() const {
  std::vector<const obs::EventLog*> logs;
  logs.reserve(shards_.size() + extra_supervision_.size() + 1);
  for (const auto& shard : shards_) logs.push_back(&shard->supervision);
  logs.push_back(&meta_drift_.events());
  for (const obs::EventLog* log : extra_supervision_) logs.push_back(log);
  return obs::EventLog::merge(logs);
}

std::string FleetRuntime::supervision_jsonl(bool with_timing) const {
  return obs::EventLog::to_jsonl(supervision_events(), with_timing);
}

std::string FleetRuntime::scrape(bool include_process) const {
  // Fleet-state-derived series: recomputed from shard state on every call,
  // so they are deterministic across LEAF_THREADS *and* across a
  // SIGKILL + restore cycle (unlike process-global registry counters,
  // which are process-lifetime).
  std::string out;
  char buf[160];
  const auto line = [&](const char* name, const std::string& labels,
                        long long v) {
    std::snprintf(buf, sizeof buf, "%s{%s} %lld\n", name, labels.c_str(), v);
    out += buf;
  };
  const ServeStats st = stats();
  struct ShardSeries {
    const char* name;
    long long (*get)(const ShardStats&);
  };
  static constexpr ShardSeries kShardSeries[] = {
      {"leaf_fleet_shard_steps",
       [](const ShardStats& s) { return static_cast<long long>(s.steps); }},
      {"leaf_fleet_shard_days_evaluated",
       [](const ShardStats& s) { return static_cast<long long>(s.days_evaluated); }},
      {"leaf_fleet_shard_retrains",
       [](const ShardStats& s) { return static_cast<long long>(s.retrains); }},
      {"leaf_fleet_shard_drift_events",
       [](const ShardStats& s) { return static_cast<long long>(s.drift_events); }},
      {"leaf_fleet_shard_days_skipped",
       [](const ShardStats& s) { return static_cast<long long>(s.days_skipped); }},
      {"leaf_fleet_shard_done",
       [](const ShardStats& s) { return static_cast<long long>(s.done ? 1 : 0); }},
      {"leaf_fleet_shard_health",
       [](const ShardStats& s) { return static_cast<long long>(s.health); }},
      {"leaf_fleet_shard_faults",
       [](const ShardStats& s) { return static_cast<long long>(s.faults); }},
      {"leaf_fleet_shard_suppressed_retrains",
       [](const ShardStats& s) {
         return static_cast<long long>(s.suppressed_retrains);
       }},
      {"leaf_fleet_shard_breaker_open",
       [](const ShardStats& s) {
         return static_cast<long long>(s.breaker_state == "open" ? 1 : 0);
       }},
  };
  for (const ShardSeries& series : kShardSeries) {
    out += "# TYPE ";
    out += series.name;
    out += " gauge\n";
    for (std::size_t i = 0; i < st.shards.size(); ++i) {
      const ShardStats& s = st.shards[i];
      const std::string labels =
          obs::label("shard", std::to_string(i)) + "," +
          obs::label("kpi", s.kpi) + "," + obs::label("model", s.model) +
          "," + obs::label("scheme", s.scheme);
      line(series.name, labels, series.get(s));
    }
  }
  const auto total = [&out](const char* name, long long v) {
    out += "# TYPE ";
    out += name;
    out += " gauge\n";
    out += name;
    out += " " + std::to_string(v) + "\n";
  };
  total("leaf_fleet_steps", static_cast<long long>(st.total_steps));
  total("leaf_fleet_shards", static_cast<long long>(st.shards.size()));
  total("leaf_fleet_shards_done", static_cast<long long>(st.shards_done));
  total("leaf_fleet_shards_quarantined",
        static_cast<long long>(st.shards_quarantined));
  total("leaf_fleet_retrains", st.total_retrains);
  total("leaf_fleet_drift_events", st.total_drift_events);
  total("leaf_fleet_faults", st.total_faults);
  total("leaf_fleet_breaker_trips", st.total_breaker_trips);
  total("leaf_fleet_suppressed_retrains", st.total_suppressed_retrains);
  total("leaf_fleet_snapshot_fallbacks", st.snapshot_fallbacks);
  if (include_process) out += obs::MetricsRegistry::global().scrape();
  return out;
}

}  // namespace leaf::serve
