// leaf::serve — sharded online serving runtime with versioned
// snapshot/restore (leaf::io) and fleet supervision / self-healing.
//
// A `FleetRuntime` owns N independent shards, one per (target KPI, model
// family, mitigation scheme) pipeline over a shared dataset — the
// deployment shape of §5: many concurrently maintained forecasting models
// walking the same telemetry stream.  Each shard carries its own model,
// KSWIN detector, scheme, and RNG, and steps through evaluation days with
// exactly the same per-step semantics as core::run_scheme, so a
// single-shard fleet reproduces run_scheme bit-for-bit.
//
// Shards are stepped concurrently on the leaf::par pool.  Because every
// mutable object is shard-private and per-shard seeds are derived with
// Rng::substream (counter-based, order-independent), a fleet run is
// bit-identical at any thread count.
//
// Supervision: a shard whose step throws is caught and marked FAULTED —
// the exception never reaches the other shards, which keep stepping.  A
// FAULTED shard is retried with exponential backoff measured in fleet
// steps (never wall-clock, preserving the determinism contract) and
// escalates to QUARANTINED once its retry budget is spent; a retry that
// steps cleanly returns it to HEALTHY.  Because a shard's state is
// private and fault handling never touches other shards, the healthy
// subset of a faulted fleet produces byte-identical EvalResults and
// drift-event streams to the same fleet with no faults at all — the
// isolation invariant leaf::chaos exists to prove.
//
// The headline property is *crash-equivalence*: snapshot(dir) at any step
// boundary captures every bit of mutable shard state (model, detector
// window, scheme policy state, RNG streams, training set, partial
// results, bin-edge caches, supervision state); killing the process,
// constructing an identically configured runtime, and restore(dir)-ing it
// continues the run to byte-identical EvalResults and an identical
// retrain timeline.  Snapshots are retained as numbered generations
// (fleet-NNNNNN.leafsnap, newest `snapshot_keep` kept): restore walks the
// generations newest-first and falls back per shard to the last known
// good generation when a section is damaged, instead of failing the
// fleet.  Restore parses the complete state into temporaries before
// committing anything, so a corrupt file never leaves a partially
// restored fleet.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "chaos/chaos.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "core/breaker.hpp"
#include "core/evaluation.hpp"
#include "core/experiment.hpp"
#include "data/dataset.hpp"
#include "data/features.hpp"
#include "drift/kswin.hpp"
#include "io/snapshot.hpp"
#include "models/factory.hpp"
#include "obs/events.hpp"
#include "obs/trace.hpp"
#include "tsdb/meta_drift.hpp"
#include "tsdb/store.hpp"

namespace leaf::serve {

/// One shard's pipeline: which KPI it forecasts, with which model family
/// and mitigation scheme.  `seed` = 0 derives the shard's seed from the
/// fleet seed via Rng::substream(shard_index).
struct ShardSpec {
  data::TargetKpi kpi = data::TargetKpi::kDVol;
  models::ModelFamily model = models::ModelFamily::kGbdt;
  std::string scheme = "LEAF";
  std::uint64_t seed = 0;
};

/// Shard supervision FSM.  HEALTHY shards step normally; a FAULTED shard
/// is waiting out its backoff before a retry; a QUARANTINED shard has
/// spent its retry budget and is permanently skipped (its results so far
/// remain readable).
enum class ShardHealth : std::uint8_t {
  kHealthy = 0,
  kFaulted = 1,
  kQuarantined = 2,
};

const char* to_string(ShardHealth h);

/// Bounded-retry recovery policy for FAULTED shards.  All delays are in
/// fleet steps, not wall-clock: after the k-th consecutive failure a
/// shard skips `backoff_base_steps * 2^(k-1)` fleet steps before its
/// next attempt, and after `max_retries` failed retries (i.e. on
/// consecutive failure max_retries + 1) it is QUARANTINED.
struct RecoveryPolicy {
  int max_retries = 3;
  int backoff_base_steps = 1;
};

/// Fleet supervision configuration: recovery, retrain circuit breaking,
/// snapshot retention, and the chaos schedule (disabled by default).
struct SupervisorConfig {
  RecoveryPolicy recovery;
  /// Per-shard retrain circuit breaker (0 max_retrains = disabled).
  core::BreakerConfig breaker;
  /// Snapshot generations to retain on disk (>= 1).
  int snapshot_keep = 3;
  /// Seeded fault-injection schedule (leaf::chaos); empty = no chaos.
  chaos::ChaosConfig chaos;
};

/// Per-shard progress counters.
struct ShardStats {
  std::string kpi;
  std::string model;
  std::string scheme;
  std::uint64_t steps = 0;         ///< step() calls that reached this shard
  int days_evaluated = 0;          ///< days actually scored
  int retrains = 0;
  int drift_events = 0;
  int days_skipped = 0;            ///< thin test slices skipped
  int nonfinite_errors = 0;
  int next_day = 0;                ///< next target day this shard will score
  bool done = false;
  // --- supervision ------------------------------------------------------
  ShardHealth health = ShardHealth::kHealthy;
  int faults = 0;                  ///< total step failures caught
  int consecutive_failures = 0;
  std::uint64_t backoff_until = 0; ///< fleet step of the next retry
  std::string last_error;          ///< what() of the most recent failure
  std::string breaker_state;       ///< "closed" / "open" / "half_open"
  int breaker_trips = 0;
  int suppressed_retrains = 0;     ///< retrains the breaker suppressed
};

struct ServeStats {
  std::vector<ShardStats> shards;
  std::uint64_t total_steps = 0;
  int total_retrains = 0;
  int total_drift_events = 0;
  std::size_t shards_done = 0;
  // --- supervision ------------------------------------------------------
  std::size_t shards_quarantined = 0;
  int total_faults = 0;
  int total_breaker_trips = 0;
  int total_suppressed_retrains = 0;
  int snapshot_fallbacks = 0;  ///< shard rollbacks during the last restore
};

class FleetRuntime {
 public:
  /// The dataset and scale must outlive the runtime.  Shards sharing a KPI
  /// share one (const) Featurizer.
  FleetRuntime(const data::CellularDataset& ds, const Scale& scale,
               std::vector<ShardSpec> specs, std::uint64_t fleet_seed = 2024,
               SupervisorConfig supervisor = {});
  ~FleetRuntime();

  FleetRuntime(const FleetRuntime&) = delete;
  FleetRuntime& operator=(const FleetRuntime&) = delete;

  std::size_t num_shards() const { return shards_.size(); }
  /// True when every shard has either finished the dataset or been
  /// QUARANTINED (a quarantined shard will never progress again).
  bool done() const;
  std::uint64_t steps_run() const { return steps_run_; }
  const SupervisorConfig& supervisor() const { return supervisor_; }

  /// Advances every unfinished shard by one evaluation step (one stride of
  /// days), in parallel over the leaf::par pool.  Lazily performs the
  /// initial fits on the first call.  A shard that throws is contained:
  /// marked FAULTED (eventually QUARANTINED) while the rest keep
  /// stepping.  Returns false when no shard can progress any further.
  bool step();

  /// Runs to completion; returns the number of step() calls made.
  std::uint64_t run_to_end();

  /// Runs at most `n` steps; stops early when done.
  std::uint64_t run_steps(std::uint64_t n);

  /// Writes the next snapshot generation, <dir>/fleet-NNNNNN.leafsnap
  /// (versioned, checksummed; see io::SnapshotWriter), then prunes
  /// generations beyond supervisor().snapshot_keep.  Valid only at a step
  /// boundary, which is the only time the caller can observe the runtime
  /// anyway.  Returns the file size in bytes, or 0 when the write failed
  /// (the fleet keeps serving; the failure is logged and counted).
  std::uint64_t snapshot(const std::string& dir);

  /// Restores from the snapshot generations in `dir` into this runtime.
  /// The runtime must have been constructed with the same dataset, scale,
  /// specs, and fleet seed; a configuration mismatch throws
  /// io::SnapshotError *without* mutating this runtime.  Damage in the
  /// newest generation (CRC mismatch, truncation) triggers per-shard
  /// fallback to the newest older generation whose section is intact —
  /// recorded as `snapshot_fallback` supervision events — and only when a
  /// shard has no readable section in any retained generation does the
  /// restore fail.
  void restore(const std::string& dir);

  /// True when `dir` holds at least one snapshot generation (readable or
  /// not) — the "is there anything to resume from?" probe.
  static bool has_snapshot(const std::string& dir);

  /// Snapshot generation numbers present in `dir`, ascending.
  static std::vector<std::uint64_t> snapshot_generations(
      const std::string& dir);

  /// Finalized per-shard results (ne_p95 computed).  Call when done(), or
  /// mid-run for results-so-far.
  std::vector<core::EvalResult> results() const;

  ServeStats stats() const;

  /// Fleet-wide drift-event stream: per-shard logs merged with a stable
  /// (day, shard) sort — a pure function of the computation, bit-identical
  /// at any LEAF_THREADS and across a snapshot/restore cycle (shard logs
  /// are part of the snapshot).
  std::vector<obs::Event> merged_events() const;
  /// The merged stream as JSONL; with_timing=false omits the
  /// `elapsed_seconds` key (the form determinism checks compare).
  std::string events_jsonl(bool with_timing = true) const;

  /// Supervision event stream (shard faults, recoveries, quarantines,
  /// breaker transitions, snapshot fallbacks), merged like
  /// merged_events().  Kept separate from the drift-event stream so the
  /// drift telemetry of a healthy shard is byte-identical whether or not
  /// *other* shards misbehaved.
  std::vector<obs::Event> supervision_events() const;
  std::string supervision_jsonl(bool with_timing = true) const;

  /// Merges an external supervision log (e.g. the SLO watchdog's burn
  /// events) into supervision_events().  Each non-null log is appended
  /// (several can be attached); the logs must outlive the runtime; pass
  /// nullptr to detach all.
  void attach_supervision_log(const obs::EventLog* log) {
    if (log == nullptr) extra_supervision_.clear();
    else extra_supervision_.push_back(log);
  }

  /// Fleet-average of each shard's most recent per-day NRMSE — the model-
  /// quality signal the SLO watchdog's nrmse-regression burn rate tracks.
  /// NaN until at least one shard has scored a day.
  double current_avg_nrmse() const;

  /// Prometheus text scrape: fleet-state-derived `leaf_fleet_*` series
  /// (deterministic and resume-safe, since they are recomputed from shard
  /// state) followed — when `include_process` — by the process-global
  /// registry scrape (spans, cache counters; process-lifetime values).
  std::string scrape(bool include_process = true) const;

  // --- telemetry store (leaf::tsdb) -------------------------------------

  /// Samples fleet telemetry into the embedded time-series store and
  /// feeds the meta-drift recording rules, advancing the logical sample
  /// tick.  Called automatically at every step() boundary; the serving
  /// loop also calls it per idle tick once the fleet is done stepping so
  /// net-plane series keep flowing.  Timestamps are logical tick indices,
  /// never wall-clock.  A chaos `tsdb-gap` decision skips the sampling
  /// but still advances the tick, leaving a deterministic gap.  No-op
  /// when observability is compiled out.
  void sample_telemetry();

  /// The embedded telemetry store.  Series derived from fleet state are
  /// deterministic (byte-identical at any LEAF_THREADS and across
  /// snapshot/restore); series sampled from the process-global registry
  /// (net-plane deltas, *_seconds*) are stored but excluded from
  /// Store::fingerprint().
  const tsdb::Store& telemetry() const { return tsdb_; }
  tsdb::Store& telemetry() { return tsdb_; }

  /// The meta-drift watchdog over the recording rules (deadline-miss /
  /// shed / quarantine rates, per-shard NRMSE).
  const tsdb::MetaDrift& meta_drift() const { return meta_drift_; }

  /// Number of recording rules currently in a fired (held) drift state —
  /// the value of the `leaf_telemetry_drift_state` gauge.
  int telemetry_drift_state() const {
    return meta_drift_.state(sample_tick_);
  }

  /// Logical sample tick (number of sample_telemetry() calls, snapshot-
  /// carried so resumed series continue seamlessly).
  std::uint64_t sample_tick() const { return sample_tick_; }

  // --- net-plane query surface (leaf::net) ------------------------------
  // Predictions are pure reads of a shard's current model: they never
  // mutate shard state, so serving queries between step() calls preserves
  // crash-equivalence bit-for-bit.  All three throw std::out_of_range on
  // a shard index outside the fleet.

  /// True when shard `i` holds a trained model and can answer predict
  /// requests (initialized, fitted, not quarantined; done shards keep
  /// serving their frozen model).
  bool shard_ready(std::size_t i) const;

  /// Feature-vector width shard `i` expects (its featurizer's columns).
  int shard_num_features(std::size_t i) const;

  /// Batch-predicts rows of X with shard `i`'s current model into `out`
  /// (out.size() must equal X.rows()).  Throws std::invalid_argument on a
  /// column-count mismatch and std::runtime_error when the shard is not
  /// ready.  Must not race a concurrent step(); the net plane calls it
  /// only between steps, from the thread driving the server.
  void predict_shard(std::size_t i, const Matrix& X,
                     std::span<double> out) const;

  /// Traced variant: opens a "shard-predict" child span in `spans` (when
  /// non-null) around the model pass and records the per-shard predict
  /// latency percentile histogram.  The collector is caller-owned and
  /// shard-private, so this stays safe from the net pump's parallel
  /// phase.
  void predict_shard(std::size_t i, const Matrix& X, std::span<double> out,
                     obs::SpanCollector* spans) const;

 private:
  struct Shard;

  void start();  // initial fits (idempotent)
  void step_shard(Shard& shard, std::uint64_t fleet_step);
  void handle_shard_failure(Shard& shard, std::uint64_t fleet_step,
                            const char* what);
  void record_net_deltas(std::uint64_t tick);

  const data::CellularDataset* ds_;
  Scale scale_;
  std::vector<ShardSpec> specs_;
  std::uint64_t fleet_seed_;
  SupervisorConfig supervisor_;
  chaos::Engine chaos_;
  std::vector<std::unique_ptr<data::Featurizer>> featurizers_;  // one per KPI
  std::vector<std::unique_ptr<Shard>> shards_;
  bool started_ = false;
  std::uint64_t steps_run_ = 0;
  std::uint64_t snapshot_gen_ = 0;   ///< last generation written/restored
  int snapshot_fallbacks_ = 0;       ///< rollbacks in the last restore
  std::vector<const obs::EventLog*> extra_supervision_;  ///< SLO watchdog etc.
  // --- telemetry store --------------------------------------------------
  tsdb::Store tsdb_;
  tsdb::MetaDrift meta_drift_;
  std::uint64_t sample_tick_ = 0;
  /// Process-lifetime registry counter baselines for the volatile
  /// net-plane rate series (delta since this runtime started / resumed).
  /// Never snapshotted: a resumed process starts fresh deltas.
  struct NetBaseline {
    std::string metric;
    double last = 0.0;
  };
  std::vector<NetBaseline> net_baselines_;
};

}  // namespace leaf::serve
