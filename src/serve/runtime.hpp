// leaf::serve — sharded online serving runtime with versioned
// snapshot/restore (leaf::io).
//
// A `FleetRuntime` owns N independent shards, one per (target KPI, model
// family, mitigation scheme) pipeline over a shared dataset — the
// deployment shape of §5: many concurrently maintained forecasting models
// walking the same telemetry stream.  Each shard carries its own model,
// KSWIN detector, scheme, and RNG, and steps through evaluation days with
// exactly the same per-step semantics as core::run_scheme, so a
// single-shard fleet reproduces run_scheme bit-for-bit.
//
// Shards are stepped concurrently on the leaf::par pool.  Because every
// mutable object is shard-private and per-shard seeds are derived with
// Rng::substream (counter-based, order-independent), a fleet run is
// bit-identical at any thread count.
//
// The headline property is *crash-equivalence*: snapshot(dir) at any step
// boundary captures every bit of mutable shard state (model, detector
// window, scheme policy state, RNG streams, training set, partial
// results, bin-edge caches); killing the process, constructing an
// identically configured runtime, and restore(dir)-ing it continues the
// run to byte-identical EvalResults and an identical retrain timeline.
// Restore parses the complete snapshot into temporaries before committing
// anything, so a corrupt file never leaves a partially restored fleet.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "core/evaluation.hpp"
#include "core/experiment.hpp"
#include "data/dataset.hpp"
#include "data/features.hpp"
#include "drift/kswin.hpp"
#include "io/snapshot.hpp"
#include "models/factory.hpp"
#include "obs/events.hpp"

namespace leaf::serve {

/// One shard's pipeline: which KPI it forecasts, with which model family
/// and mitigation scheme.  `seed` = 0 derives the shard's seed from the
/// fleet seed via Rng::substream(shard_index).
struct ShardSpec {
  data::TargetKpi kpi = data::TargetKpi::kDVol;
  models::ModelFamily model = models::ModelFamily::kGbdt;
  std::string scheme = "LEAF";
  std::uint64_t seed = 0;
};

/// Per-shard progress counters.
struct ShardStats {
  std::string kpi;
  std::string model;
  std::string scheme;
  std::uint64_t steps = 0;         ///< step() calls that reached this shard
  int days_evaluated = 0;          ///< days actually scored
  int retrains = 0;
  int drift_events = 0;
  int days_skipped = 0;            ///< thin test slices skipped
  int nonfinite_errors = 0;
  int next_day = 0;                ///< next target day this shard will score
  bool done = false;
};

struct ServeStats {
  std::vector<ShardStats> shards;
  std::uint64_t total_steps = 0;
  int total_retrains = 0;
  int total_drift_events = 0;
  std::size_t shards_done = 0;
};

class FleetRuntime {
 public:
  /// The dataset and scale must outlive the runtime.  Shards sharing a KPI
  /// share one (const) Featurizer.
  FleetRuntime(const data::CellularDataset& ds, const Scale& scale,
               std::vector<ShardSpec> specs, std::uint64_t fleet_seed = 2024);
  ~FleetRuntime();

  FleetRuntime(const FleetRuntime&) = delete;
  FleetRuntime& operator=(const FleetRuntime&) = delete;

  std::size_t num_shards() const { return shards_.size(); }
  bool done() const;
  std::uint64_t steps_run() const { return steps_run_; }

  /// Advances every unfinished shard by one evaluation step (one stride of
  /// days), in parallel over the leaf::par pool.  Lazily performs the
  /// initial fits on the first call.  Returns false when every shard has
  /// walked off the end of the dataset.
  bool step();

  /// Runs to completion; returns the number of step() calls made.
  std::uint64_t run_to_end();

  /// Runs at most `n` steps; stops early when done.
  std::uint64_t run_steps(std::uint64_t n);

  /// Writes <dir>/fleet.leafsnap (versioned, checksummed; see
  /// io::SnapshotWriter).  Valid only at a step boundary, which is the
  /// only time the caller can observe the runtime anyway.  Returns the
  /// file size in bytes.
  std::uint64_t snapshot(const std::string& dir) const;

  /// Restores from <dir>/fleet.leafsnap into this runtime.  The runtime
  /// must have been constructed with the same dataset, scale, specs, and
  /// fleet seed; any mismatch, truncation, checksum failure, or unknown
  /// key throws io::SnapshotError *without* mutating this runtime.
  void restore(const std::string& dir);

  /// Finalized per-shard results (ne_p95 computed).  Call when done(), or
  /// mid-run for results-so-far.
  std::vector<core::EvalResult> results() const;

  ServeStats stats() const;

  /// Fleet-wide drift-event stream: per-shard logs merged with a stable
  /// (day, shard) sort — a pure function of the computation, bit-identical
  /// at any LEAF_THREADS and across a snapshot/restore cycle (shard logs
  /// are part of the snapshot).
  std::vector<obs::Event> merged_events() const;
  /// The merged stream as JSONL; with_timing=false omits the
  /// `elapsed_seconds` key (the form determinism checks compare).
  std::string events_jsonl(bool with_timing = true) const;

  /// Prometheus text scrape: fleet-state-derived `leaf_fleet_*` series
  /// (deterministic and resume-safe, since they are recomputed from shard
  /// state) followed — when `include_process` — by the process-global
  /// registry scrape (spans, cache counters; process-lifetime values).
  std::string scrape(bool include_process = true) const;

 private:
  struct Shard;

  void start();  // initial fits (idempotent)

  const data::CellularDataset* ds_;
  Scale scale_;
  std::vector<ShardSpec> specs_;
  std::uint64_t fleet_seed_;
  std::vector<std::unique_ptr<data::Featurizer>> featurizers_;  // one per KPI
  std::vector<std::unique_ptr<Shard>> shards_;
  bool started_ = false;
  std::uint64_t steps_run_ = 0;
};

}  // namespace leaf::serve
