#include "tsdb/store.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace leaf::tsdb {

const char* to_string(Resolution r) {
  switch (r) {
    case Resolution::kRaw: return "raw";
    case Resolution::kTenStep: return "10-step";
    case Resolution::kHundredStep: return "100-step";
  }
  return "?";
}

Store::Store(StoreConfig cfg) : cfg_(cfg) {
  if (cfg_.raw_capacity == 0) cfg_.raw_capacity = 1;
  if (cfg_.agg10_capacity == 0) cfg_.agg10_capacity = 1;
  if (cfg_.agg100_capacity == 0) cfg_.agg100_capacity = 1;
  if (cfg_.max_series == 0) cfg_.max_series = 1;
}

void Store::fold(std::deque<AggBucket>& tier, std::uint64_t bucket_start,
                 double value, std::size_t capacity) {
  if (tier.empty() || tier.back().start_step != bucket_start) {
    tier.push_back({bucket_start, value, value, value, 1});
    while (tier.size() > capacity) tier.pop_front();
    return;
  }
  AggBucket& b = tier.back();
  b.min = std::min(b.min, value);
  b.max = std::max(b.max, value);
  b.sum += value;
  ++b.count;
}

void Store::record(const std::string& name, const std::string& labels,
                   std::uint64_t step, double value, bool deterministic) {
  if (!std::isfinite(value)) {
    ++samples_dropped_;
    return;
  }
  auto it = series_.find({name, labels});
  if (it == series_.end()) {
    if (series_.size() >= cfg_.max_series) {
      ++samples_dropped_;
      return;
    }
    it = series_.emplace(std::make_pair(name, labels), Series{}).first;
    it->second.deterministic = deterministic;
  }
  Series& s = it->second;
  if (!s.raw.empty() && step < s.raw.back().step) {
    ++samples_dropped_;
    return;
  }
  s.raw.push_back({step, value});
  while (s.raw.size() > cfg_.raw_capacity) s.raw.pop_front();
  fold(s.agg10, step - step % 10, value, cfg_.agg10_capacity);
  fold(s.agg100, step - step % 100, value, cfg_.agg100_capacity);
  last_step_ = std::max(last_step_, step);
  ++samples_recorded_;
}

namespace {

bool name_matches(const std::string& pattern, const std::string& name) {
  if (pattern.empty()) return true;
  if (pattern.back() == '*')
    return name.compare(0, pattern.size() - 1, pattern, 0,
                        pattern.size() - 1) == 0;
  return name == pattern;
}

}  // namespace

Store::QueryResult Store::query(const Query& q) const {
  QueryResult out;
  for (const auto& [key, s] : series_) {
    const auto& [name, labels] = key;
    if (!name_matches(q.name, name)) continue;
    if (!q.labels_contains.empty() &&
        labels.find(q.labels_contains) == std::string::npos)
      continue;
    if (out.series.size() >= q.max_series) {
      out.truncated = true;
      break;
    }
    SeriesData data;
    data.name = name;
    data.labels = labels;
    data.resolution = q.resolution;
    if (q.resolution == Resolution::kRaw) {
      for (const Sample& sample : s.raw) {
        if (sample.step < q.start_step || sample.step > q.end_step) continue;
        data.steps.push_back(sample.step);
        data.values.push_back(sample.value);
      }
    } else {
      const std::deque<AggBucket>& tier =
          q.resolution == Resolution::kTenStep ? s.agg10 : s.agg100;
      for (const AggBucket& b : tier) {
        if (b.start_step < q.start_step || b.start_step > q.end_step)
          continue;
        data.steps.push_back(b.start_step);
        data.values.push_back(b.sum / static_cast<double>(b.count));
        data.min.push_back(b.min);
        data.max.push_back(b.max);
        data.counts.push_back(b.count);
      }
    }
    out.series.push_back(std::move(data));
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> Store::series_keys() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(series_.size());
  for (const auto& [key, s] : series_) out.push_back(key);
  return out;
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= kFnvPrime;
  }
}

void fnv(std::uint64_t& h, double v) { fnv(h, std::bit_cast<std::uint64_t>(v)); }

void fnv(std::uint64_t& h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  fnv(h, static_cast<std::uint64_t>(s.size()));
}

}  // namespace

std::uint64_t Store::fingerprint() const {
  std::uint64_t h = kFnvOffset;
  for (const auto& [key, s] : series_) {
    const auto& [name, labels] = key;
    if (!s.deterministic) continue;
    if (name.find("_seconds") != std::string::npos) continue;
    fnv(h, name);
    fnv(h, labels);
    for (const Sample& sample : s.raw) {
      fnv(h, sample.step);
      fnv(h, sample.value);
    }
    for (const std::deque<AggBucket>* tier : {&s.agg10, &s.agg100})
      for (const AggBucket& b : *tier) {
        fnv(h, b.start_step);
        fnv(h, b.min);
        fnv(h, b.max);
        fnv(h, b.sum);
        fnv(h, b.count);
      }
  }
  return h;
}

namespace {

void save_tier(io::Serializer& out, const std::deque<AggBucket>& tier) {
  out.put_u64(tier.size());
  for (const AggBucket& b : tier) {
    out.put_u64(b.start_step);
    out.put_f64(b.min);
    out.put_f64(b.max);
    out.put_f64(b.sum);
    out.put_u64(b.count);
  }
}

std::deque<AggBucket> load_tier(io::Deserializer& in) {
  const std::uint64_t count = in.get_count(8 + 8 + 8 + 8 + 8);
  std::deque<AggBucket> tier;
  for (std::uint64_t i = 0; i < count; ++i) {
    AggBucket b;
    b.start_step = in.get_u64();
    b.min = in.get_f64();
    b.max = in.get_f64();
    b.sum = in.get_f64();
    b.count = in.get_u64();
    tier.push_back(b);
  }
  return tier;
}

}  // namespace

void Store::save(io::Serializer& out) const {
  out.put_u64(last_step_);
  out.put_u64(samples_recorded_);
  out.put_u64(samples_dropped_);
  out.put_u64(series_.size());
  for (const auto& [key, s] : series_) {
    out.put_string(key.first);
    out.put_string(key.second);
    out.put_bool(s.deterministic);
    out.put_u64(s.raw.size());
    for (const Sample& sample : s.raw) {
      out.put_u64(sample.step);
      out.put_f64(sample.value);
    }
    save_tier(out, s.agg10);
    save_tier(out, s.agg100);
  }
}

void Store::load(io::Deserializer& in) {
  // Parse everything into temporaries before committing (no partial load).
  const std::uint64_t last_step = in.get_u64();
  const std::uint64_t recorded = in.get_u64();
  const std::uint64_t dropped = in.get_u64();
  // name + labels + flag + three tier counts, minimum footprint per series.
  const std::uint64_t n = in.get_count(4 + 4 + 1 + 8 + 8 + 8);
  std::map<std::pair<std::string, std::string>, Series> series;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name = in.get_string();
    std::string labels = in.get_string();
    Series s;
    s.deterministic = in.get_bool();
    const std::uint64_t raw_n = in.get_count(8 + 8);
    for (std::uint64_t j = 0; j < raw_n; ++j) {
      Sample sample;
      sample.step = in.get_u64();
      sample.value = in.get_f64();
      s.raw.push_back(sample);
    }
    s.agg10 = load_tier(in);
    s.agg100 = load_tier(in);
    series.emplace(std::make_pair(std::move(name), std::move(labels)),
                   std::move(s));
  }
  series_ = std::move(series);
  last_step_ = last_step;
  samples_recorded_ = recorded;
  samples_dropped_ = dropped;
}

void Store::clear() {
  series_.clear();
  last_step_ = 0;
  samples_recorded_ = 0;
  samples_dropped_ = 0;
}

}  // namespace leaf::tsdb
