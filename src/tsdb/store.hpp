// leaf::tsdb — embedded deterministic time-series store for fleet
// telemetry.
//
// `scrape()` is point-in-time: the moment a value scrolls past, the trend
// is gone — yet LEAF's whole premise is that drift decisions need
// *retained* history.  A `Store` closes that loop in-process: the serving
// runtime records one sample per series per fleet step, timestamped with
// the logical step index (never wall-clock), into per-series ring
// buffers with tiered downsampling:
//
//   raw       last `raw_capacity` (step, value) samples
//   10-step   last `agg10_capacity` buckets of min/max/sum/count
//   100-step  last `agg100_capacity` buckets of min/max/sum/count
//
// Because samples arrive from the runtime's serial step epilogue in
// logical-step order, every ring buffer, every aggregate bucket, and the
// store's serialized form are pure functions of the execution —
// bit-identical at any LEAF_THREADS and across SIGKILL + --resume (the
// store snapshots alongside shard state in the LEAFSNAP v4 container).
//
// Series carry a `deterministic` flag: fleet-state-derived series
// (NRMSE, health, quarantine counts) are deterministic and participate
// in `fingerprint()`; net-plane rate series sampled off process-lifetime
// registry counters are volatile (their *deltas* are schedule-driven but
// their baselines are process history) and are stored for operators but
// excluded from determinism checks — the same split the `_seconds`
// naming convention draws for wall-clock metrics, which are likewise
// excluded.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "io/serializer.hpp"

namespace leaf::tsdb {

/// Query granularity: raw samples or one of the downsampled tiers.
enum class Resolution : std::uint8_t {
  kRaw = 0,
  kTenStep = 1,
  kHundredStep = 2,
};

const char* to_string(Resolution r);

/// Ring-buffer and retention bounds.  Defaults hold ~5k steps of history
/// per series across the three tiers in a few KB.
struct StoreConfig {
  std::size_t raw_capacity = 512;     ///< raw samples kept per series
  std::size_t agg10_capacity = 256;   ///< 10-step buckets kept per series
  std::size_t agg100_capacity = 128;  ///< 100-step buckets kept per series
  std::size_t max_series = 512;       ///< series cap; excess names dropped
};

/// One raw observation: logical step index + value.
struct Sample {
  std::uint64_t step = 0;
  double value = 0.0;

  bool operator==(const Sample&) const = default;
};

/// One downsampled bucket covering [start_step, start_step + width).
struct AggBucket {
  std::uint64_t start_step = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  std::uint64_t count = 0;

  bool operator==(const AggBucket&) const = default;
};

/// One series' worth of query results.  At kRaw, `steps`/`values` hold
/// the matching samples and the aggregate vectors are empty; at the
/// downsampled tiers `values` holds each bucket's mean and min/max/counts
/// hold the rest of the bucket.
struct SeriesData {
  std::string name;
  std::string labels;  ///< canonical label string ("{k=\"v\",...}" or "")
  Resolution resolution = Resolution::kRaw;
  std::vector<std::uint64_t> steps;
  std::vector<double> values;
  std::vector<double> min;
  std::vector<double> max;
  std::vector<std::uint64_t> counts;
};

class Store {
 public:
  explicit Store(StoreConfig cfg = {});

  const StoreConfig& config() const { return cfg_; }

  /// Records one sample for (name, labels) at logical step `step`.
  /// Non-finite values are dropped (a telemetry fault is not a data
  /// point).  `deterministic` marks the series for fingerprint()
  /// inclusion; the flag is sticky from the first record of a series.
  /// Steps must be non-decreasing per series (samples arrive from the
  /// serial step epilogue); an out-of-order step is dropped and counted.
  void record(const std::string& name, const std::string& labels,
              std::uint64_t step, double value, bool deterministic = true);

  std::size_t num_series() const { return series_.size(); }
  std::uint64_t last_step() const { return last_step_; }
  std::uint64_t samples_recorded() const { return samples_recorded_; }
  /// Samples refused: series cap hit, non-finite, or out-of-order step.
  std::uint64_t samples_dropped() const { return samples_dropped_; }

  /// Name matcher: exact match, or prefix match with a trailing '*'
  /// ("leaf_fleet_*").  Label matcher: substring of the canonical label
  /// string ("" matches everything).
  struct Query {
    std::string name;
    std::string labels_contains;
    std::uint64_t start_step = 0;
    std::uint64_t end_step = ~0ULL;  ///< inclusive
    Resolution resolution = Resolution::kRaw;
    std::size_t max_series = 16;
  };

  struct QueryResult {
    std::vector<SeriesData> series;  ///< (name, labels) lexicographic order
    bool truncated = false;          ///< more series matched than returned
  };

  QueryResult query(const Query& q) const;

  /// All stored series keys, lexicographic — the `top` discovery surface.
  std::vector<std::pair<std::string, std::string>> series_keys() const;

  /// FNV-1a over every deterministic, non-`_seconds` series: names,
  /// labels, raw samples, and both aggregate tiers, in lexicographic
  /// series order.  The CI determinism gates compare this across thread
  /// counts and across SIGKILL + --resume.
  std::uint64_t fingerprint() const;

  /// Snapshot support (LEAFSNAP v4 "tsdb" section).
  void save(io::Serializer& out) const;
  void load(io::Deserializer& in);

  void clear();

 private:
  struct Series {
    bool deterministic = true;
    std::deque<Sample> raw;
    std::deque<AggBucket> agg10;
    std::deque<AggBucket> agg100;
  };

  static void fold(std::deque<AggBucket>& tier, std::uint64_t bucket_start,
                   double value, std::size_t capacity);

  StoreConfig cfg_;
  std::map<std::pair<std::string, std::string>, Series> series_;
  std::uint64_t last_step_ = 0;
  std::uint64_t samples_recorded_ = 0;
  std::uint64_t samples_dropped_ = 0;
};

}  // namespace leaf::tsdb
