// leaf::tsdb — meta-drift detection on the fleet's own telemetry.
//
// LEAF runs KSWIN over model NRMSE streams to catch concept drift in the
// *data*; this watchdog dogfoods the same detectors on the *serving
// plane's* telemetry.  Recording rules derive one scalar per logical
// tick from the fleet/net state — deadline-miss rate, shed rate,
// quarantine rate, and each shard's NRMSE — and each rule feeds its own
// `drift::Kswin` (or `drift::Adwin`) instance.  A detector firing means
// the telemetry's distribution changed: a deadline storm starting, a
// quarantine wave, a shard's error regime shifting — exactly the trend
// breaks a point-in-time scrape cannot see.
//
// Firings emit `telemetry-drift` supervision events (merged into the
// fleet supervision stream) and raise `state()` — the number of rules
// that fired within the last `hold_ticks` ticks — which the runtime
// exports as the `leaf_telemetry_drift_state` gauge and the SloWatchdog
// can escalate on (spec key `telemetry-drift=N`).
//
// Determinism: ticks are logical, rule inputs are pure functions of the
// fleet/request schedule, per-rule detector seeds are derived from the
// rule name, and detector state snapshots alongside the store — so the
// event stream and state trajectory are bit-identical at any
// LEAF_THREADS and across SIGKILL + --resume.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "drift/detector.hpp"
#include "drift/kswin.hpp"
#include "io/serializer.hpp"
#include "obs/events.hpp"

namespace leaf::tsdb {

struct MetaDriftConfig {
  /// Detector family per rule: "KSWIN" or "ADWIN".
  std::string detector = "KSWIN";
  /// KSWIN tuning for telemetry streams: smaller windows than the model
  /// detectors, because serving incidents play out over tens of ticks,
  /// not hundreds of evaluation days.
  drift::KswinConfig kswin{/*window_size=*/24, /*stat_size=*/8,
                           /*alpha=*/0.01, /*seed=*/71};
  /// Ticks a fired rule keeps contributing to state().
  std::uint64_t hold_ticks = 50;
};

class MetaDrift {
 public:
  explicit MetaDrift(MetaDriftConfig cfg = {});

  const MetaDriftConfig& config() const { return cfg_; }

  /// One recording-rule tick.  Feeds `value` into the rule's detector
  /// (lazily created, seeded from the rule name); a non-finite value is
  /// skipped.  On a firing, emits a `telemetry-drift` event carrying the
  /// rule name and tick (`shard` scopes per-shard rules; -1 otherwise)
  /// and refreshes the rule's hold window.  Returns true when the
  /// detector fired at this tick.
  bool observe(const std::string& rule, int shard, std::uint64_t tick,
               double value);

  /// Number of rules that fired within the last hold_ticks ticks as of
  /// `tick` — the `leaf_telemetry_drift_state` gauge value.
  int state(std::uint64_t tick) const;

  /// Total firings across all rules.
  std::uint64_t firings() const { return firings_; }

  /// The telemetry-drift supervision events (merge into the fleet
  /// supervision stream via FleetRuntime::attach_supervision_log).
  const obs::EventLog& events() const { return events_; }

  /// Snapshot support: detector state, hold windows, and the event log,
  /// so a resumed run continues the exact detection trajectory.
  void save(io::Serializer& out) const;
  void load(io::Deserializer& in);

  void clear();

 private:
  struct Rule {
    int shard = -1;
    std::unique_ptr<drift::DriftDetector> detector;
    std::uint64_t fired_at = 0;
    bool ever_fired = false;
  };

  std::unique_ptr<drift::DriftDetector> make_detector(
      const std::string& rule) const;

  MetaDriftConfig cfg_;
  std::map<std::string, Rule> rules_;
  std::uint64_t firings_ = 0;
  obs::EventLog events_;
};

}  // namespace leaf::tsdb
