#include "tsdb/meta_drift.hpp"

#include <cmath>

#include "drift/adwin.hpp"

namespace leaf::tsdb {

MetaDrift::MetaDrift(MetaDriftConfig cfg) : cfg_(std::move(cfg)) {}

std::unique_ptr<drift::DriftDetector> MetaDrift::make_detector(
    const std::string& rule) const {
  if (cfg_.detector == "ADWIN")
    return std::make_unique<drift::Adwin>();
  // Derive the rule's KSWIN seed from its name so every rule draws an
  // independent — but run-to-run stable — sample stream.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : rule) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  drift::KswinConfig kcfg = cfg_.kswin;
  kcfg.seed ^= h;
  return std::make_unique<drift::Kswin>(kcfg);
}

bool MetaDrift::observe(const std::string& rule, int shard,
                        std::uint64_t tick, double value) {
  if (!std::isfinite(value)) return false;
  auto it = rules_.find(rule);
  if (it == rules_.end()) {
    Rule r;
    r.shard = shard;
    r.detector = make_detector(rule);
    it = rules_.emplace(rule, std::move(r)).first;
  }
  Rule& r = it->second;
  if (!r.detector->update(value)) return false;
  r.fired_at = tick;
  r.ever_fired = true;
  ++firings_;
  obs::Event e;
  e.kind = obs::EventKind::kTelemetryDrift;
  e.shard = shard;
  e.detail = "rule=" + rule + ",tick=" + std::to_string(tick) +
             ",detector=" + r.detector->name();
  events_.emit(std::move(e));
  return true;
}

int MetaDrift::state(std::uint64_t tick) const {
  int active = 0;
  for (const auto& [name, r] : rules_)
    if (r.ever_fired && tick - r.fired_at < cfg_.hold_ticks) ++active;
  return active;
}

void MetaDrift::save(io::Serializer& out) const {
  out.put_u64(firings_);
  out.put_u64(rules_.size());
  for (const auto& [name, r] : rules_) {
    out.put_string(name);
    out.put_i32(r.shard);
    out.put_u64(r.fired_at);
    out.put_bool(r.ever_fired);
    r.detector->save_state(out);
  }
  events_.save(out);
}

void MetaDrift::load(io::Deserializer& in) {
  const std::uint64_t firings = in.get_u64();
  // name + shard + fired_at + flag, minimum footprint per rule.
  const std::uint64_t n = in.get_count(4 + 4 + 8 + 1);
  std::map<std::string, Rule> rules;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name = in.get_string();
    Rule r;
    r.shard = in.get_i32();
    r.fired_at = in.get_u64();
    r.ever_fired = in.get_bool();
    r.detector = make_detector(name);
    r.detector->load_state(in);
    rules.emplace(std::move(name), std::move(r));
  }
  obs::EventLog events;
  events.load(in);
  rules_ = std::move(rules);
  events_ = std::move(events);
  firings_ = firings;
}

void MetaDrift::clear() {
  rules_.clear();
  firings_ = 0;
  events_.clear();
}

}  // namespace leaf::tsdb
