#include "chaos/chaos.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace leaf::chaos {

namespace {

// Fault-point tags: first substream key of every decision, so the fault
// points draw from independent streams even at identical coordinates.
enum Point : std::uint64_t {
  kStepThrow = 1,
  kRetrainStorm = 2,
  kSlow = 3,
  kSnapshotCorrupt = 4,
  kSnapshotPartial = 5,
  kCorruptTarget = 6,
  kNetTruncate = 7,
  kNetGarbage = 8,
  kDeadlineStorm = 9,
  kTsdbGap = 10,
};

double parse_probability(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  double p = 0.0;
  try {
    p = std::stod(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != value.size() || p < 0.0 || p > 1.0)
    throw std::invalid_argument("chaos: '" + key + "' needs a probability in "
                                "[0, 1], got '" + value + "'");
  return p;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != value.size())
    throw std::invalid_argument("chaos: '" + key +
                                "' needs a non-negative integer, got '" +
                                value + "'");
  return v;
}

std::vector<int> parse_shards(const std::string& value) {
  std::vector<int> out;
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t plus = value.find('+', start);
    const std::size_t end = plus == std::string::npos ? value.size() : plus;
    if (end > start) {
      const std::string tok = value.substr(start, end - start);
      out.push_back(static_cast<int>(parse_u64("shards", tok)));
    }
    if (plus == std::string::npos) break;
    start = plus + 1;
  }
  if (out.empty())
    throw std::invalid_argument("chaos: 'shards' needs '+'-separated indices");
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

bool ChaosConfig::any() const {
  return step_throw > 0.0 || retrain_storm > 0.0 || slow > 0.0 ||
         snapshot_corrupt > 0.0 || snapshot_partial > 0.0 ||
         net_truncate > 0.0 || net_garbage > 0.0 || deadline_storm > 0.0 ||
         tsdb_gap > 0.0;
}

ChaosConfig ChaosConfig::parse(const std::string& spec) {
  ChaosConfig cfg;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    if (end > start) {
      const std::string item = spec.substr(start, end - start);
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == item.size())
        throw std::invalid_argument("chaos: expected key=value, got '" + item +
                                    "'");
      const std::string key = item.substr(0, eq);
      const std::string value = item.substr(eq + 1);
      if (key == "seed") cfg.seed = parse_u64(key, value);
      else if (key == "shards") cfg.shards = parse_shards(value);
      else if (key == "step-throw") cfg.step_throw = parse_probability(key, value);
      else if (key == "step-throw-before")
        cfg.step_throw_before = parse_u64(key, value);
      else if (key == "retrain-storm")
        cfg.retrain_storm = parse_probability(key, value);
      else if (key == "slow") cfg.slow = parse_probability(key, value);
      else if (key == "slow-ms")
        cfg.slow_ms = static_cast<int>(parse_u64(key, value));
      else if (key == "snapshot-corrupt")
        cfg.snapshot_corrupt = parse_probability(key, value);
      else if (key == "snapshot-partial")
        cfg.snapshot_partial = parse_probability(key, value);
      else if (key == "net-truncate")
        cfg.net_truncate = parse_probability(key, value);
      else if (key == "net-garbage")
        cfg.net_garbage = parse_probability(key, value);
      else if (key == "deadline-storm")
        cfg.deadline_storm = parse_probability(key, value);
      else if (key == "tsdb-gap")
        cfg.tsdb_gap = parse_probability(key, value);
      else
        throw std::invalid_argument("chaos: unknown fault point '" + key + "'");
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return cfg;
}

ChaosConfig ChaosConfig::from_env() {
  const char* env = std::getenv("LEAF_CHAOS");
  if (env == nullptr || *env == '\0') return {};
  return parse(env);
}

std::string ChaosConfig::to_string() const {
  std::ostringstream out;
  out << "seed=" << seed;
  if (!shards.empty()) {
    out << ",shards=";
    for (std::size_t i = 0; i < shards.size(); ++i)
      out << (i ? "+" : "") << shards[i];
  }
  const auto prob = [&out](const char* key, double p) {
    if (p > 0.0) out << "," << key << "=" << p;
  };
  prob("step-throw", step_throw);
  if (step_throw_before != ~0ULL)
    out << ",step-throw-before=" << step_throw_before;
  prob("retrain-storm", retrain_storm);
  prob("slow", slow);
  if (slow > 0.0) out << ",slow-ms=" << slow_ms;
  prob("snapshot-corrupt", snapshot_corrupt);
  prob("snapshot-partial", snapshot_partial);
  prob("net-truncate", net_truncate);
  prob("net-garbage", net_garbage);
  prob("deadline-storm", deadline_storm);
  prob("tsdb-gap", tsdb_gap);
  return out.str();
}

Engine::Engine(ChaosConfig cfg) : cfg_(std::move(cfg)), base_(cfg_.seed) {}

bool Engine::targets(int shard) const {
  return cfg_.shards.empty() ||
         std::binary_search(cfg_.shards.begin(), cfg_.shards.end(), shard);
}

bool Engine::decide(std::uint64_t point, std::uint64_t a, std::uint64_t b,
                    double p) const {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  Rng stream = base_.substream(point).substream(a).substream(b);
  return stream.uniform() < p;
}

bool Engine::throw_step(int shard, std::uint64_t fleet_step) const {
  if (!targets(shard) || fleet_step >= cfg_.step_throw_before) return false;
  return decide(kStepThrow, static_cast<std::uint64_t>(shard), fleet_step,
                cfg_.step_throw);
}

bool Engine::retrain_storm(int shard, std::uint64_t fleet_step) const {
  if (!targets(shard)) return false;
  return decide(kRetrainStorm, static_cast<std::uint64_t>(shard), fleet_step,
                cfg_.retrain_storm);
}

bool Engine::slow_step(int shard, std::uint64_t fleet_step) const {
  if (!targets(shard)) return false;
  return decide(kSlow, static_cast<std::uint64_t>(shard), fleet_step,
                cfg_.slow);
}

bool Engine::corrupt_snapshot(std::uint64_t gen) const {
  return decide(kSnapshotCorrupt, gen, 0, cfg_.snapshot_corrupt);
}

int Engine::corrupt_target(std::size_t n_shards, std::uint64_t gen) const {
  if (n_shards == 0) return 0;
  Rng stream = base_.substream(kCorruptTarget).substream(gen);
  if (!cfg_.shards.empty()) {
    // Draw from the configured target set (clamped to the fleet size).
    std::vector<int> in_range;
    for (int s : cfg_.shards)
      if (s >= 0 && static_cast<std::size_t>(s) < n_shards)
        in_range.push_back(s);
    if (!in_range.empty())
      return in_range[stream.index(in_range.size())];
  }
  return static_cast<int>(stream.index(n_shards));
}

bool Engine::partial_write(std::uint64_t gen) const {
  return decide(kSnapshotPartial, gen, 0, cfg_.snapshot_partial);
}

bool Engine::net_truncate(std::uint64_t conn, std::uint64_t seq) const {
  return decide(kNetTruncate, conn, seq, cfg_.net_truncate);
}

bool Engine::net_garbage(std::uint64_t conn, std::uint64_t seq) const {
  return decide(kNetGarbage, conn, seq, cfg_.net_garbage);
}

bool Engine::deadline_storm(std::uint64_t conn, std::uint64_t seq) const {
  return decide(kDeadlineStorm, conn, seq, cfg_.deadline_storm);
}

bool Engine::tsdb_gap(std::uint64_t tick) const {
  return decide(kTsdbGap, tick, 0, cfg_.tsdb_gap);
}

}  // namespace leaf::chaos
