// Deterministic chaos injection (leaf::chaos).
//
// A seeded fault-point registry for supervision and self-healing tests:
// the serving runtime (leaf::serve) asks the engine, at well-defined
// logical coordinates, whether a fault fires — a shard step throwing, a
// snapshot generation being corrupted or partially written, a retrain
// storm, a slow shard.  Every decision is a pure function of
// (config seed, fault point, coordinates) via Rng::substream, so a chaos
// schedule is bit-identical at any thread count and across runs: the
// same faults hit the same shards at the same fleet steps no matter how
// work is scheduled.  That is what lets the chaos tests and bench_chaos
// assert the isolation invariant — healthy shards of a faulted fleet
// produce byte-identical results to a fleet that never contained the
// faulty shard.
//
// Configuration comes from the LEAF_CHAOS environment variable (or an
// equivalent spec string / leafctl --chaos), a comma-separated k=v list:
//
//   seed=N                 decision stream seed (default 1)
//   shards=A+B+...         target shard indices ('+'-separated; default all)
//   step-throw=P           P(shard step throws chaos::Fault) per fleet step
//   step-throw-before=N    only throw while fleet_step < N (default: always)
//   retrain-storm=P        P(force a retrain request) per shard fleet step
//   slow=P                 P(stall a shard step) per shard fleet step
//   slow-ms=N              stall duration in milliseconds (default 2)
//   snapshot-corrupt=P     P(flip a bit in one target shard's section) per
//                          written snapshot generation
//   snapshot-partial=P     P(the snapshot write fails midway) per generation
//   net-truncate=P         P(an evil net client disconnects mid-frame) per
//                          sent request (consumed by bench_net / net tests)
//   net-garbage=P          P(an evil net client corrupts a frame byte) per
//                          sent request
//   deadline-storm=P       P(a net client sends a request with an already-
//                          hopeless 1ms deadline) per sent request — drives
//                          queue sheds and the SLO burn-rate watchdog
//   tsdb-gap=P             P(the telemetry store skips sampling) per logical
//                          tick — leaves a deterministic gap in every stored
//                          series (the tick still advances)
//
// Example: LEAF_CHAOS="seed=7,shards=0+2,step-throw=0.1,retrain-storm=0.2"
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace leaf::chaos {

/// The exception injected by step-throw faults: a stand-in for "anything
/// a shard's step can raise" that supervision must contain.
class Fault : public std::runtime_error {
 public:
  explicit Fault(const std::string& what)
      : std::runtime_error("chaos: " + what) {}
};

struct ChaosConfig {
  std::uint64_t seed = 1;
  std::vector<int> shards;  ///< target shard indices; empty = all shards
  double step_throw = 0.0;
  std::uint64_t step_throw_before = ~0ULL;
  double retrain_storm = 0.0;
  double slow = 0.0;
  int slow_ms = 2;
  double snapshot_corrupt = 0.0;
  double snapshot_partial = 0.0;
  double net_truncate = 0.0;
  double net_garbage = 0.0;
  double deadline_storm = 0.0;
  double tsdb_gap = 0.0;

  /// True when any fault point has a non-zero probability.
  bool any() const;

  /// Parses a spec string (see file header).  Throws std::invalid_argument
  /// on unknown keys, malformed numbers, or probabilities outside [0, 1].
  static ChaosConfig parse(const std::string& spec);

  /// Reads LEAF_CHAOS from the environment; disabled config when unset or
  /// empty.  Throws std::invalid_argument on a malformed value.
  static ChaosConfig from_env();

  /// Canonical spec string (round-trips through parse).
  std::string to_string() const;
};

/// Stateless decision engine over a ChaosConfig.  All queries are const
/// and pure: the same coordinates always give the same answer.
class Engine {
 public:
  Engine() = default;
  explicit Engine(ChaosConfig cfg);

  bool enabled() const { return cfg_.any(); }
  const ChaosConfig& config() const { return cfg_; }
  /// Whether `shard` is in the config's target set.
  bool targets(int shard) const;

  /// Shard `shard`'s step at fleet step `fleet_step` throws chaos::Fault.
  bool throw_step(int shard, std::uint64_t fleet_step) const;
  /// Force a retrain request from shard `shard` at this fleet step (drives
  /// the retrain circuit breaker).
  bool retrain_storm(int shard, std::uint64_t fleet_step) const;
  /// Stall this shard's step by config().slow_ms wall-clock milliseconds
  /// (perturbs scheduling, never results).
  bool slow_step(int shard, std::uint64_t fleet_step) const;

  /// Snapshot generation `gen` gets one bit flipped in a target shard's
  /// section before hitting disk.
  bool corrupt_snapshot(std::uint64_t gen) const;
  /// Which of `n_shards` shards' sections to corrupt in generation `gen`
  /// (drawn from the target set when one is configured).
  int corrupt_target(std::size_t n_shards, std::uint64_t gen) const;
  /// Snapshot generation `gen`'s file write fails midway, exercising the
  /// writer's temp-file cleanup and the fleet's keep-serving path.
  bool partial_write(std::uint64_t gen) const;

  /// Net-plane client misbehavior (consumed by the evil clients in
  /// bench_net and the net chaos tests; the server side has no fault
  /// points — the point is proving it survives the client's).
  /// Connection `conn`'s request number `seq` is cut off mid-frame.
  bool net_truncate(std::uint64_t conn, std::uint64_t seq) const;
  /// Connection `conn`'s request number `seq` gets one byte corrupted.
  bool net_garbage(std::uint64_t conn, std::uint64_t seq) const;
  /// Connection `conn`'s request number `seq` carries a deadline it
  /// cannot possibly meet, forcing a SHED at dequeue time.
  bool deadline_storm(std::uint64_t conn, std::uint64_t seq) const;

  /// The telemetry store skips sampling at logical tick `tick` (the tick
  /// still advances, so the gap is visible in every stored series).
  bool tsdb_gap(std::uint64_t tick) const;

 private:
  /// P(fault) decision at (fault point, a, b) — a pure substream lookup.
  bool decide(std::uint64_t point, std::uint64_t a, std::uint64_t b,
              double p) const;

  ChaosConfig cfg_;
  Rng base_{1};
};

}  // namespace leaf::chaos
