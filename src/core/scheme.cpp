#include "core/scheme.hpp"

#include "core/eval_cache.hpp"

namespace leaf::core {

data::SupervisedSet latest_labeled_window(const data::Featurizer& featurizer,
                                          int eval_day, int window) {
  const int last_feature_day = eval_day - featurizer.horizon();
  return featurizer.window(last_feature_day - window + 1, last_feature_day);
}

data::SupervisedSet latest_labeled_window(const SchemeContext& ctx,
                                          int window) {
  const int last_feature_day = ctx.eval_day - ctx.featurizer.horizon();
  const int first_feature_day = last_feature_day - window + 1;
  if (ctx.cache != nullptr)
    return ctx.cache->window(first_feature_day, last_feature_day);
  return ctx.featurizer.window(first_feature_day, last_feature_day);
}

void MitigationScheme::save_state(io::Serializer& out) const {
  (void)out;
  throw io::SnapshotError("scheme '" + name() + "' does not support snapshots");
}

void MitigationScheme::load_state(io::Deserializer& in) {
  (void)in;
  throw io::SnapshotError("scheme '" + name() + "' does not support snapshots");
}

PeriodicScheme::PeriodicScheme(int period_days) : period_(period_days) {}

void PeriodicScheme::reset() { last_retrain_day_ = -1; }

std::optional<data::SupervisedSet> PeriodicScheme::on_step(
    const SchemeContext& ctx) {
  if (last_retrain_day_ < 0) last_retrain_day_ = ctx.eval_day;  // clock start
  if (ctx.eval_day - last_retrain_day_ < period_) return std::nullopt;
  last_retrain_day_ = ctx.eval_day;
  return latest_labeled_window(ctx, ctx.train_window);
}

std::string PeriodicScheme::name() const {
  return "Naive" + std::to_string(period_);
}

void PeriodicScheme::save_state(io::Serializer& out) const {
  out.put_i32(period_);
  out.put_i32(last_retrain_day_);
}

void PeriodicScheme::load_state(io::Deserializer& in) {
  const int period = in.get_i32();
  if (period != period_)
    throw io::SnapshotError(
        "periodic scheme period mismatch between snapshot and scheme");
  last_retrain_day_ = in.get_i32();
}

std::optional<data::SupervisedSet> TriggeredScheme::on_step(
    const SchemeContext& ctx) {
  if (!ctx.drift) return std::nullopt;
  return latest_labeled_window(ctx, ctx.train_window);
}

}  // namespace leaf::core
