#include "core/leaf_scheme.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/stats.hpp"
#include "explain/importance.hpp"
#include "explain/lea.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace leaf::core {

namespace {
std::string fmt6(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}
}  // namespace

LeafScheme::LeafScheme(LeafConfig cfg, double target_dispersion)
    : cfg_(cfg), dispersion_(target_dispersion), rng_(cfg.seed) {}

void LeafScheme::reset() {
  rng_ = Rng(cfg_.seed);
  last_groups_.clear();
}

std::string LeafScheme::name() const {
  return cfg_.num_groups == 1 ? "LEAF"
                              : "LEAF(" + std::to_string(cfg_.num_groups) + ")";
}

std::optional<data::SupervisedSet> LeafScheme::on_step(
    const SchemeContext& ctx) {
  if (!ctx.drift) return std::nullopt;
  LEAF_SPAN("leaf.mitigate");

  const data::SupervisedSet latest =
      latest_labeled_window(ctx, ctx.train_window);
  if (latest.empty() || ctx.current_train.empty()) return std::nullopt;

  // --- Explain: rank features by sensitivity on the drifting samples,
  // then group correlated features and keep the top representatives.
  explain::ImportanceConfig imp_cfg;
  imp_cfg.max_rows = cfg_.importance_max_rows;
  imp_cfg.repeats = cfg_.importance_repeats;
  Rng imp_rng = rng_.fork(static_cast<std::uint64_t>(ctx.eval_day));
  std::vector<double> importance = explain::permutation_importance(
      ctx.model, latest.X, latest.y, ctx.featurizer.norm_range(), imp_rng,
      imp_cfg);
  // Drift explanations are given in terms of KPIs (the paper's feature
  // groups are all KPI columns): temporal/area encodings never represent
  // a group, and resampling on e.g. day-of-week bins would be meaningless.
  for (std::size_t c = static_cast<std::size_t>(ctx.featurizer.num_kpi_features());
       c < importance.size(); ++c)
    importance[c] = 0.0;

  explain::GroupingConfig grp_cfg;
  grp_cfg.corr_threshold = cfg_.corr_threshold;
  grp_cfg.max_groups = cfg_.num_groups;
  last_groups_ = explain::group_features(latest.X, importance, grp_cfg);
  if (last_groups_.empty()) {
    // No feature carries signal (can happen on tiny windows): fall back to
    // plain triggered behaviour rather than skipping mitigation.
    return latest_labeled_window(ctx, ctx.train_window);
  }

  // Diagnostic: error contrast of the top group (how localized the error
  // is over the representative feature's bins).  Recorded for the case
  // study / benches; homogeneous drift legitimately produces flat
  // profiles, so this is not used as a retrain gate.
  {
    const int rep = last_groups_.front().representative;
    const std::span<const double> fv =
        latest.X.col_view(static_cast<std::size_t>(rep));
    const std::vector<double> edges =
        explain::lea_bin_edges(fv, cfg_.lea_bins);
    const explain::LeaResult el = explain::compute_lea(
        ctx.model, latest, rep, cfg_.lea_bins, ctx.featurizer.norm_range(),
        edges);
    double max_err = 0.0, sum_we = 0.0;
    std::size_t total = 0;
    for (std::size_t b = 0; b < el.error.size(); ++b) {
      max_err = std::max(max_err, el.error[b]);
      sum_we += el.error[b] * static_cast<double>(el.count[b]);
      total += el.count[b];
    }
    last_contrast_ =
        (max_err > 0.0 && total > 0)
            ? 1.0 - sum_we / static_cast<double>(total) / max_err
            : 0.0;
  }

  // Over-sampling pool: the collected dataset, truncated to the recent
  // pool_window days (always contains the latest drifting samples).
  const data::SupervisedSet pool =
      latest_labeled_window(ctx, cfg_.pool_window);

  // --- Mitigate: iterate forgetting + over-sampling per feature group,
  // each round rebuilding from the previous round's restructured set.
  data::SupervisedSet train = ctx.current_train;
  for (const auto& group : last_groups_) {
    Rng round_rng = rng_.fork(static_cast<std::uint64_t>(
        ctx.eval_day * 131 + group.representative));
    train =
        restructure(ctx, train, latest, pool, group.representative, round_rng);
  }

  // --- Validate: fit a candidate on the restructured set and require it
  // to hold up against the current model on the recency-weighted pool.
  if (ctx.prototype != nullptr && !pool.empty()) {
    auto candidate = ctx.prototype->clone_untrained();
    candidate->fit(train.X, train.y);
    if (candidate->trained()) {
      double w_sum = 0.0, cur_sq = 0.0, cand_sq = 0.0;
      for (std::size_t i = 0; i < pool.size(); ++i) {
        const double age =
            static_cast<double>(ctx.eval_day - pool.target_day[i]);
        const double w = std::exp(-std::max(0.0, age) / cfg_.recency_tau_days);
        const double dc = ctx.model.predict_one(pool.X.row(i)) - pool.y[i];
        const double dn = candidate->predict_one(pool.X.row(i)) - pool.y[i];
        w_sum += w;
        cur_sq += w * dc * dc;
        cand_sq += w * dn * dn;
      }
      const double tolerance = dispersion_ >= cfg_.dispersion_threshold
                                   ? cfg_.validation_tolerance_high
                                   : cfg_.validation_tolerance_low;
      if (w_sum > 0.0 && std::sqrt(cand_sq) > tolerance * std::sqrt(cur_sq)) {
        // The retrain would make things worse: veto it (and record why).
        static obs::Counter& rejected_ctr =
            obs::MetricsRegistry::global().counter(
                "leaf_retrains_rejected_total");
        rejected_ctr.inc();
        if (ctx.events != nullptr) {
          ctx.events->emit({obs::EventKind::kRetrainRejected, ctx.eval_day,
                            ctx.shard,
                            data::to_string(ctx.featurizer.target()),
                            ctx.prototype->name(), name(),
                            "contrast=" + fmt6(last_contrast_) + ",groups=" +
                                std::to_string(last_groups_.size())});
        }
        return std::nullopt;
      }
    }
  }
  return train;
}

data::SupervisedSet LeafScheme::restructure(const SchemeContext& ctx,
                                            const data::SupervisedSet& train,
                                            const data::SupervisedSet& latest,
                                            const data::SupervisedSet& pool,
                                            int representative,
                                            Rng& rng) const {
  const double norm_range = ctx.featurizer.norm_range();

  // E_L: the model's local error distribution over quantile bins of the
  // representative feature, measured on the latest drifting samples.
  const std::span<const double> latest_fv =
      latest.X.col_view(static_cast<std::size_t>(representative));
  const std::vector<double> edges =
      explain::lea_bin_edges(latest_fv, cfg_.lea_bins);
  const explain::LeaResult el = explain::compute_lea(
      ctx.model, latest, representative, cfg_.lea_bins, norm_range, edges);

  const double max_err =
      el.error.empty() ? 0.0
                       : *std::max_element(el.error.begin(), el.error.end());
  if (max_err <= 0.0) return train;  // nothing to act on

  const bool high_dispersion = dispersion_ >= cfg_.dispersion_threshold;

  // --- Forgetting ------------------------------------------------------
  // Each training sample is weighted by the (normalized) E_L error of the
  // feature bin it falls into; samples in regions the model now gets
  // wrong are stale and dropped with probability proportional to that
  // weight.  Homogeneous (low-dispersion) KPIs replace stale regions
  // wholesale; bursty (high-dispersion) KPIs forget more gently so
  // transient spikes can't evict the whole history.
  const double strength =
      high_dispersion ? cfg_.forget_strength_high : cfg_.forget_strength_low;
  const std::span<const double> train_fv =
      train.X.col_view(static_cast<std::size_t>(representative));
  std::vector<std::size_t> kept;
  kept.reserve(train.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    const std::size_t b = explain::lea_bin_of(train_fv[i], edges);
    double p_drop = strength * el.error[b] / max_err;
    if (!high_dispersion &&
        ctx.eval_day - train.target_day[i] > cfg_.pool_window) {
      p_drop += cfg_.forget_age_prob;  // slow drain of very old samples
    }
    if (!rng.bernoulli(std::min(cfg_.forget_cap, p_drop))) kept.push_back(i);
  }
  // Never forget everything: keep at least an eighth of the set.
  if (kept.size() < train.size() / 8) {
    kept.resize(train.size() / 8);
    std::iota(kept.begin(), kept.end(), std::size_t{0});
  }
  data::SupervisedSet restructured = train.subset(kept);

  // --- Over-sampling -----------------------------------------------------
  // Refill to the original size from the collected pool, with per-bin
  // weights linear (low dispersion) or cubic (high dispersion) in E_L, so
  // high-error regions receive the most replacement data.  A small weight
  // floor keeps every region represented.  Within a high-error bin the
  // pool mixes months of samples, so focused over-sampling refreshes the
  // region without cloning a transient burst.
  // Low-dispersion KPIs over-sample "the latest drifting instances"
  // directly (homogeneous drift: fresh data is simply better everywhere);
  // high-dispersion KPIs draw from the months-long pool so cubic focusing
  // cannot clone a transient burst.
  const std::size_t refill = train.size() - restructured.size();
  const data::SupervisedSet& source =
      high_dispersion ? (pool.empty() ? latest : pool) : latest;
  if (refill > 0 && !source.empty()) {
    const std::span<const double> source_fv =
        source.X.col_view(static_cast<std::size_t>(representative));
    std::vector<double> weights(source.size());
    for (std::size_t i = 0; i < source.size(); ++i) {
      const std::size_t b = explain::lea_bin_of(source_fv[i], edges);
      const double e = el.error[b] / max_err;
      weights[i] =
          std::max(cfg_.oversample_floor, high_dispersion ? e * e * e : e);
      if (high_dispersion) {
        // Recency decay so a regime switch (e.g. an outage ending) isn't
        // drowned out by months of pre-switch pool samples.
        const double age =
            static_cast<double>(ctx.eval_day - source.target_day[i]);
        weights[i] *= std::exp(-std::max(0.0, age) / cfg_.recency_tau_days);
      }
    }
    const std::vector<std::size_t> drawn =
        rng.weighted_sample_with_replacement(weights, refill);
    restructured.append(source.subset(drawn));
  }
  return restructured;
}

void LeafScheme::save_state(io::Serializer& out) const {
  out.put_u64(cfg_.seed);
  out.put_i32(cfg_.num_groups);
  out.put_f64(dispersion_);
  io::write(out, rng_);
  out.put_u64(last_groups_.size());
  for (const explain::FeatureGroup& g : last_groups_) {
    out.put_i32(g.representative);
    out.put_f64(g.importance);
    out.put_ints(g.members);
  }
  out.put_f64(last_contrast_);
}

void LeafScheme::load_state(io::Deserializer& in) {
  const std::uint64_t seed = in.get_u64();
  const int num_groups = in.get_i32();
  const double dispersion = in.get_f64();
  if (seed != cfg_.seed || num_groups != cfg_.num_groups ||
      dispersion != dispersion_)
    throw io::SnapshotError(
        "LEAF scheme configuration mismatch between snapshot and scheme");
  Rng rng(cfg_.seed);
  io::read_rng(in, rng);
  const std::size_t count = in.get_count(4 + 8 + 8);  // rep + imp + members len
  std::vector<explain::FeatureGroup> groups(count);
  for (explain::FeatureGroup& g : groups) {
    g.representative = in.get_i32();
    g.importance = in.get_f64();
    g.members = in.get_ints();
  }
  const double contrast = in.get_f64();
  rng_ = rng;
  last_groups_ = std::move(groups);
  last_contrast_ = contrast;
}

}  // namespace leaf::core
