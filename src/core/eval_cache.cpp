#include "core/eval_cache.hpp"

#include "obs/metrics.hpp"

namespace leaf::core {

namespace {

std::size_t payload_bytes(const data::SupervisedSet& s) {
  return s.X.rows() * s.X.cols() * sizeof(double) +
         s.size() * (sizeof(double) + 3 * sizeof(int));
}

data::SupervisedSet compute_day(const data::Featurizer& f, int day, int) {
  return f.at_target_day(day);
}

data::SupervisedSet compute_window(const data::Featurizer& f, int first,
                                   int last) {
  return f.window(first, last);
}

std::uint64_t pair_key(int a, int b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(b));
}

}  // namespace

const data::SupervisedSet& EvalCache::memo(
    Map& map, std::uint64_t key,
    data::SupervisedSet (*compute)(const data::Featurizer&, int, int), int a,
    int b) {
  // Hit/miss counters are *process* metrics: concurrent first requests for
  // the same slice race benignly (both count a miss, one insert wins), so
  // their values are schedule-dependent and excluded from determinism
  // comparisons (DESIGN.md "Observability").
  static obs::Counter& hits_ctr =
      obs::MetricsRegistry::global().counter("leaf_cache_eval_hits_total");
  static obs::Counter& misses_ctr =
      obs::MetricsRegistry::global().counter("leaf_cache_eval_misses_total");
  static obs::Gauge& bytes_gauge =
      obs::MetricsRegistry::global().gauge("leaf_cache_eval_bytes");
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = map.find(key);
    if (it != map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      hits_ctr.inc();
      return *it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  misses_ctr.inc();
  auto value = std::make_unique<const data::SupervisedSet>(
      compute(*featurizer_, a, b));
  const std::size_t cost = payload_bytes(*value);

  std::lock_guard<std::mutex> lk(mu_);
  const auto it = map.find(key);
  if (it != map.end()) return *it->second;  // raced: keep the first insert
  if (bytes_.load(std::memory_order_relaxed) + cost > max_bytes_) {
    overflow_.push_back(std::move(value));
    return *overflow_.back();
  }
  bytes_.fetch_add(cost, std::memory_order_relaxed);
  bytes_gauge.set(static_cast<double>(bytes_.load(std::memory_order_relaxed)));
  return *map.emplace(key, std::move(value)).first->second;
}

const data::SupervisedSet& EvalCache::at_target_day(int day) {
  return memo(by_day_, pair_key(day, 0), &compute_day, day, 0);
}

const data::SupervisedSet& EvalCache::window(int first_feature_day,
                                             int last_feature_day) {
  return memo(by_window_, pair_key(first_feature_day, last_feature_day),
              &compute_window, first_feature_day, last_feature_day);
}

}  // namespace leaf::core
