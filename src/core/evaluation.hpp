// Walk-forward evaluation engine.
//
// Reproduces the paper's measurement loop: train a model on a fixed-size
// window of history ending at the anchor date (July 1, 2018 by default),
// then advance day by day through the study, evaluating the model's NRMSE
// on each date's test slice (all eNodeBs whose 180-day-ahead target falls
// on that date), feeding the NRMSE stream to the drift detector, and
// letting the active mitigation scheme retrain when its policy says so.
//
// The engine produces the per-day NRMSE series behind Figures 1/2/9, the
// retrain counts of Tables 3/4/5, and — via metrics::delta_nrmse_pct
// against the Static run — the ΔNRMSE̅ values in every evaluation table.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "data/features.hpp"
#include "drift/kswin.hpp"
#include "ingest/health.hpp"
#include "ingest/pipeline.hpp"
#include "models/regressor.hpp"
#include "obs/events.hpp"

namespace leaf::core {

struct EvalConfig {
  /// Training window length in days (the paper settles on 14; Fig. 2a).
  int train_window = 14;
  /// Last day of the initial training window; -1 = July 1, 2018.
  int anchor_day = -1;
  /// Forecast horizon in days (§2.2).
  int horizon = 180;
  /// Evaluate every `stride` days (1 = daily, as in the paper; >1 shrinks
  /// runtime at small scale without changing any qualitative result).
  int stride = 1;
  /// Detector configuration (KSWIN on the NRMSE stream, Appendix B).
  drift::KswinConfig detector;
  /// Skip evaluation days with fewer pairs than this (degenerate NRMSE).
  int min_samples_per_day = 3;
  std::uint64_t seed = 2024;

  // --- graceful degradation (leaf::ingest integration) --------------------
  /// Day-indexed health of the *target KPI* from the ingest pipeline.
  /// When provided, any evaluation step whose target day or feature day is
  /// in OUTAGE freezes the drift detector and suppresses retraining, so a
  /// collection outage is not misread as concept drift.  Empty = no guard.
  std::span<const ingest::HealthState> target_health = {};
  /// Suppress non-finite NRMSE values (skip the step, count it) instead of
  /// poisoning the series and the detector.  On by default; the robustness
  /// bench turns it off for its "unguarded" arm.
  bool guard_nonfinite = true;
  /// Optional ingest report whose quarantine/imputation counters are
  /// copied into EvalResult::degraded for end-to-end visibility.
  const ingest::IngestReport* ingest_report = nullptr;
  /// NRMSE normalization range override (<= 0: use the featurizer's own
  /// target range).  Runs over repaired or corrupted datasets must share
  /// the clean dataset's range, or a surviving spike silently deflates
  /// every error it normalizes.
  double norm_range_override = 0.0;

  // --- performance (leaf::par / caching integration) ----------------------
  /// Optional slice memo shared across runs of the same Featurizer (see
  /// core/eval_cache.hpp).  Bit-identical to recomputation; null = off.
  /// Must outlive the run and must have been built over `featurizer`.
  EvalCache* cache = nullptr;

  // --- observability (leaf::obs integration) ------------------------------
  /// Optional structured drift-event sink: every detector firing, retrain,
  /// LEAF retrain rejection, OUTAGE freeze, and suppressed non-finite
  /// error is recorded with day/KPI/model/scheme context.  Single-writer:
  /// never share one log between concurrently running evaluations.
  obs::EventLog* events = nullptr;
  /// Serve shard index stamped on emitted events (-1 outside serve).
  int obs_shard = -1;
};

/// What the graceful-degradation guards did during a run (all zero on a
/// clean stream with no guards tripped).
struct DegradedStats {
  int days_skipped = 0;           ///< eval days skipped (no / degenerate data)
  int nonfinite_errors = 0;       ///< non-finite NRMSE values suppressed
  int frozen_detector_days = 0;   ///< steps with the detector frozen (OUTAGE)
  int suppressed_retrains = 0;    ///< scheme steps bypassed during OUTAGE
  std::int64_t values_imputed = 0;       ///< from the ingest report
  std::int64_t quarantined_records = 0;  ///< from the ingest report

  bool any() const {
    return days_skipped || nonfinite_errors || frozen_detector_days ||
           suppressed_retrains || values_imputed || quarantined_records;
  }
};

struct EvalResult {
  std::string scheme;
  std::string model;
  std::vector<int> days;          ///< evaluated target days
  std::vector<double> nrmse;      ///< NRMSE per evaluated day
  std::vector<double> mean_ne;    ///< mean signed NE per evaluated day
  std::vector<int> retrain_days;  ///< days on which a retrain happened
  std::vector<int> drift_days;    ///< days on which the detector fired

  int retrain_count() const { return static_cast<int>(retrain_days.size()); }
  double avg_nrmse() const;
  /// 95th percentile of |NE| across all evaluated samples (Table 7 tracks
  /// the 95th percentile of normalized error).
  double ne_p95 = 0.0;
  /// Graceful-degradation accounting (see DegradedStats).
  DegradedStats degraded;
};

/// Optional per-step observer (used by benches that dump time-series).
using StepObserver = std::function<void(int day, double nrmse, bool drift,
                                        bool retrained)>;

/// Optional per-step prediction sink: receives the day's test slice and
/// the in-use model's predictions for it (used by the LEAgram bench,
/// which needs per-sample signed errors from the *evolving* model chain).
using PredictionSink = std::function<void(
    int day, const data::SupervisedSet& test, std::span<const double> pred)>;

/// Runs one (model, scheme) pair over the dataset behind `featurizer`.
/// The model passed in is used as a prototype: the engine trains a fresh
/// clone for the initial fit and for every retrain.
EvalResult run_scheme(const data::Featurizer& featurizer,
                      const models::Regressor& prototype,
                      MitigationScheme& scheme, const EvalConfig& cfg,
                      const StepObserver& observer = {},
                      const PredictionSink& sink = {});

/// ΔNRMSE̅ of `mitigated` against `static_run` in percent (Eq. 1).
double delta_vs_static(const EvalResult& mitigated,
                       const EvalResult& static_run);

}  // namespace leaf::core
