// Walk-forward evaluation engine.
//
// Reproduces the paper's measurement loop: train a model on a fixed-size
// window of history ending at the anchor date (July 1, 2018 by default),
// then advance day by day through the study, evaluating the model's NRMSE
// on each date's test slice (all eNodeBs whose 180-day-ahead target falls
// on that date), feeding the NRMSE stream to the drift detector, and
// letting the active mitigation scheme retrain when its policy says so.
//
// The engine produces the per-day NRMSE series behind Figures 1/2/9, the
// retrain counts of Tables 3/4/5, and — via metrics::delta_nrmse_pct
// against the Static run — the ΔNRMSE̅ values in every evaluation table.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "data/features.hpp"
#include "drift/kswin.hpp"
#include "models/regressor.hpp"

namespace leaf::core {

struct EvalConfig {
  /// Training window length in days (the paper settles on 14; Fig. 2a).
  int train_window = 14;
  /// Last day of the initial training window; -1 = July 1, 2018.
  int anchor_day = -1;
  /// Forecast horizon in days (§2.2).
  int horizon = 180;
  /// Evaluate every `stride` days (1 = daily, as in the paper; >1 shrinks
  /// runtime at small scale without changing any qualitative result).
  int stride = 1;
  /// Detector configuration (KSWIN on the NRMSE stream, Appendix B).
  drift::KswinConfig detector;
  /// Skip evaluation days with fewer pairs than this (degenerate NRMSE).
  int min_samples_per_day = 3;
  std::uint64_t seed = 2024;
};

struct EvalResult {
  std::string scheme;
  std::string model;
  std::vector<int> days;          ///< evaluated target days
  std::vector<double> nrmse;      ///< NRMSE per evaluated day
  std::vector<double> mean_ne;    ///< mean signed NE per evaluated day
  std::vector<int> retrain_days;  ///< days on which a retrain happened
  std::vector<int> drift_days;    ///< days on which the detector fired

  int retrain_count() const { return static_cast<int>(retrain_days.size()); }
  double avg_nrmse() const;
  /// 95th percentile of |NE| across all evaluated samples (Table 7 tracks
  /// the 95th percentile of normalized error).
  double ne_p95 = 0.0;
};

/// Optional per-step observer (used by benches that dump time-series).
using StepObserver = std::function<void(int day, double nrmse, bool drift,
                                        bool retrained)>;

/// Optional per-step prediction sink: receives the day's test slice and
/// the in-use model's predictions for it (used by the LEAgram bench,
/// which needs per-sample signed errors from the *evolving* model chain).
using PredictionSink = std::function<void(
    int day, const data::SupervisedSet& test, std::span<const double> pred)>;

/// Runs one (model, scheme) pair over the dataset behind `featurizer`.
/// The model passed in is used as a prototype: the engine trains a fresh
/// clone for the initial fit and for every retrain.
EvalResult run_scheme(const data::Featurizer& featurizer,
                      const models::Regressor& prototype,
                      MitigationScheme& scheme, const EvalConfig& cfg,
                      const StepObserver& observer = {},
                      const PredictionSink& sink = {});

/// ΔNRMSE̅ of `mitigated` against `static_run` in percent (Eq. 1).
double delta_vs_static(const EvalResult& mitigated,
                       const EvalResult& static_run);

}  // namespace leaf::core
