// Cross-run memoization of Featurizer slices (the evaluation hot path).
//
// A (models × schemes × seeds) experiment grid walks the same dataset
// dozens of times: every run materializes the same per-target-day test
// slices, and schemes that retrain rebuild training windows that
// frequently coincide (Periodic schemes exactly; Triggered/LEAF whenever
// detections align).  Featurizer::at_target_day / ::window are pure
// functions of their arguments, so an EvalCache shared across runs
// returns bit-identical data to recomputation — it is purely a speed
// layer, safe to share between concurrently executing evaluations
// (internally synchronized).
//
// Memory is bounded by `max_bytes` (approximate payload accounting): once
// the budget is spent, further misses compute without memoizing, so the
// cache degrades to pass-through instead of growing without bound at full
// scale.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "data/features.hpp"

namespace leaf::core {

class EvalCache {
 public:
  explicit EvalCache(const data::Featurizer& featurizer,
                     std::size_t max_bytes = 256ull << 20)
      : featurizer_(&featurizer), max_bytes_(max_bytes) {}

  const data::Featurizer& featurizer() const { return *featurizer_; }

  /// Memoized Featurizer::at_target_day.  The returned reference stays
  /// valid for the cache's lifetime.
  const data::SupervisedSet& at_target_day(int day);

  /// Memoized Featurizer::window(first, last).
  const data::SupervisedSet& window(int first_feature_day,
                                    int last_feature_day);

  std::size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::size_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::size_t bytes() const { return bytes_.load(std::memory_order_relaxed); }

 private:
  using Map =
      std::unordered_map<std::uint64_t,
                         std::unique_ptr<const data::SupervisedSet>>;

  /// Shared memoization path: returns map[key], computing via
  /// compute(featurizer, a, b) on miss.  Computation happens outside the
  /// lock; concurrent duplicate computes race benignly (identical values,
  /// first insert wins).
  const data::SupervisedSet& memo(
      Map& map, std::uint64_t key,
      data::SupervisedSet (*compute)(const data::Featurizer&, int, int),
      int a, int b);

  const data::Featurizer* featurizer_;
  const std::size_t max_bytes_;
  std::mutex mu_;
  Map by_day_;
  Map by_window_;
  /// Owns pass-through results computed after the byte budget is spent,
  /// keeping returned references valid.  Append-only: overflow traffic is
  /// the rare tail by construction.
  std::vector<std::unique_ptr<const data::SupervisedSet>> overflow_;
  std::atomic<std::size_t> hits_{0}, misses_{0}, bytes_{0};
};

}  // namespace leaf::core
