#include "core/breaker.hpp"

#include <algorithm>

namespace leaf::core {

const char* RetrainBreaker::state_name() const {
  switch (state_) {
    case State::kClosed: return "closed";
    case State::kOpen: return "open";
    case State::kHalfOpen: return "half_open";
  }
  return "?";
}

void RetrainBreaker::prune(int day) {
  // Keep requests with day' > day - window_days (a window of exactly
  // `window_days` days ending at `day`).
  const auto keep_from = std::lower_bound(window_.begin(), window_.end(),
                                          day - cfg_.window_days + 1);
  window_.erase(window_.begin(), keep_from);
}

bool RetrainBreaker::allow(int day) {
  if (!cfg_.enabled()) return true;
  prune(day);
  if (state_ == State::kOpen) {
    if (day < open_until_) {
      ++suppressed_;
      return false;
    }
    // Cooldown over: let one probe retrain through.
    state_ = State::kHalfOpen;
    window_.clear();
  }
  if (static_cast<int>(window_.size()) >= cfg_.max_retrains) {
    state_ = State::kOpen;
    open_until_ = day + cfg_.cooldown_days;
    ++trips_;
    ++suppressed_;
    return false;
  }
  window_.push_back(day);
  if (state_ == State::kHalfOpen) state_ = State::kClosed;
  return true;
}

void RetrainBreaker::reset() {
  state_ = State::kClosed;
  window_.clear();
  open_until_ = 0;
  trips_ = 0;
  suppressed_ = 0;
}

void RetrainBreaker::save_state(io::Serializer& out) const {
  out.put_i32(cfg_.max_retrains);
  out.put_i32(cfg_.window_days);
  out.put_i32(cfg_.cooldown_days);
  out.put_u8(static_cast<std::uint8_t>(state_));
  out.put_ints(window_);
  out.put_i32(open_until_);
  out.put_i32(trips_);
  out.put_i32(suppressed_);
}

void RetrainBreaker::load_state(io::Deserializer& in) {
  const int max_retrains = in.get_i32();
  const int window_days = in.get_i32();
  const int cooldown_days = in.get_i32();
  if (max_retrains != cfg_.max_retrains || window_days != cfg_.window_days ||
      cooldown_days != cfg_.cooldown_days)
    throw io::SnapshotError("breaker config mismatch between snapshot and "
                            "runtime");
  const std::uint8_t state = in.get_u8();
  if (state > static_cast<std::uint8_t>(State::kHalfOpen))
    throw io::SnapshotError("breaker: unknown state " +
                            std::to_string(static_cast<int>(state)));
  std::vector<int> window = in.get_ints();
  if (!std::is_sorted(window.begin(), window.end()))
    throw io::SnapshotError("breaker: retrain window not sorted");
  state_ = static_cast<State>(state);
  window_ = std::move(window);
  open_until_ = in.get_i32();
  trips_ = in.get_i32();
  suppressed_ = in.get_i32();
}

}  // namespace leaf::core
