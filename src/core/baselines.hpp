// Literature mitigation baselines beyond the paper's main comparison.
//
// §7 ("Drift mitigation") surveys adaptation approaches and notes that
// "few mitigation approaches outperform frequent retraining": Paired
// Learners (Bach & Maloof 2008, ref [6]) and the Accuracy Updated
// Ensemble (AUE2; Brzeziński & Stefanowski 2011/2013, refs [11, 12]).
// Both are implemented here, adapted from their classification setting to
// this repository's regression task, so the extended-baselines bench can
// place LEAF against them the way the paper places it against periodic
// and triggered retraining.
#pragma once

#include <deque>
#include <memory>

#include "core/scheme.hpp"

namespace leaf::core {

/// Paired Learners: a *stable* learner (the deployed model) is challenged
/// by a *reactive* learner retrained on the most recent window.  When the
/// reactive learner has out-predicted the stable one on a sufficient
/// fraction of recent evaluation steps, the stable model is replaced with
/// a model trained on the reactive window.
struct PairedLearnersConfig {
  /// Number of recent evaluation steps compared.
  int comparison_window = 20;
  /// Replace when the reactive learner wins more than this fraction.
  double replace_threshold = 0.65;
  /// The reactive learner is refit every `refit_every` evaluation steps
  /// (each refit costs one model training, like a periodic scheme's).
  int refit_every = 4;
};

class PairedLearnersScheme final : public MitigationScheme {
 public:
  explicit PairedLearnersScheme(PairedLearnersConfig cfg = {});

  void reset() override;
  std::optional<data::SupervisedSet> on_step(const SchemeContext& ctx) override;
  std::string name() const override { return "PairedLearners"; }

 private:
  PairedLearnersConfig cfg_;
  std::unique_ptr<models::Regressor> reactive_;
  int steps_since_refit_ = 0;
  std::deque<bool> reactive_wins_;
};

/// AUE2 adapted to regression: every `chunk_days` a candidate model is
/// trained on the latest window; all members plus the candidate are scored
/// on that window (weight = 1 / (MSE + eps)); the best `max_members`
/// survive and predict as a weighted ensemble.
struct Aue2Config {
  int chunk_days = 30;
  int max_members = 5;
  double eps = 1e-12;
};

class Aue2Scheme final : public MitigationScheme {
 public:
  explicit Aue2Scheme(Aue2Config cfg = {});

  void reset() override;
  std::optional<data::SupervisedSet> on_step(const SchemeContext& ctx) override;
  std::unique_ptr<models::Regressor> take_replacement_model() override;
  std::string name() const override { return "AUE2"; }

  std::size_t member_count() const { return members_.size(); }

 private:
  Aue2Config cfg_;
  int last_chunk_day_ = -1;
  std::vector<std::shared_ptr<const models::Regressor>> members_;
  std::vector<double> member_weights_;
  std::unique_ptr<models::Regressor> pending_replacement_;
};

}  // namespace leaf::core
