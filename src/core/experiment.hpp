// Shared experiment plumbing for the benches, examples, and integration
// tests: standard evaluation configs per scale, KPI dispersion lookup, and
// a scheme factory keyed by the names used in the paper's tables.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/evaluation.hpp"
#include "core/leaf_scheme.hpp"
#include "core/scheme.hpp"
#include "data/dataset.hpp"
#include "models/factory.hpp"

namespace leaf::core {

/// Std/Mean of a target KPI over all logs of the dataset — the
/// "dispersion" (coefficient of variation) that drives LEAF's choice of
/// mitigation aggressiveness (§4.3, Table 2).
double kpi_dispersion(const data::CellularDataset& ds, data::TargetKpi t);

/// Standard evaluation configuration for a scale: the paper's 14-day
/// training window anchored at July 1 2018, 180-day horizon, KSWIN
/// detector, and the scale's evaluation stride.
EvalConfig make_eval_config(const Scale& scale, std::uint64_t seed = 2024);

/// Builds a mitigation scheme by table name:
///   "Static", "Naive<N>" (e.g. "Naive30"), "Triggered",
///   "LEAF" (1 group), "LEAF3", "LEAF5" (multi-group).
/// `dispersion` is only used by the LEAF variants.
std::unique_ptr<MitigationScheme> make_scheme(const std::string& spec,
                                              double dispersion,
                                              std::uint64_t seed = 99);

/// Seed-averaged outcome of one mitigation scheme on one (dataset, KPI,
/// model family) combination.
///
/// The paper reports single numbers from one 4.3-year run of a 412-site
/// network; at reduced scale a single run's ΔNRMSE̅ is noticeably
/// sensitive to drift-detection timing, so the benches average each cell
/// over a few seeds (model init, detector sampling, resampling draws) to
/// recover the signal.  See DESIGN.md.
struct SchemeOutcome {
  std::string scheme;
  double avg_nrmse = 0.0;    ///< mean over seeds of the run's average NRMSE
  double delta_pct = 0.0;    ///< mean ΔNRMSE̅ vs the same-seed Static run
  double retrains = 0.0;     ///< mean retrain count
  double ne_p95 = 0.0;       ///< mean 95th-pct |NE|
  double static_nrmse = 0.0; ///< mean Static avg NRMSE (the baseline)
  double static_ne_p95 = 0.0;
};

/// Runs Static plus every scheme in `specs` for each seed and averages.
/// A fresh model prototype is built per seed (so model init varies with
/// the seed too).  Standard seeds are default_seeds(); pass fewer for
/// expensive models.
std::vector<SchemeOutcome> compare_schemes(
    const data::CellularDataset& ds, data::TargetKpi target,
    models::ModelFamily family, const Scale& scale,
    std::span<const std::string> specs, std::span<const std::uint64_t> seeds);

/// The standard bench seeds.
std::span<const std::uint64_t> default_seeds();

}  // namespace leaf::core
