// The LEAF mitigation scheme (§4.3, "Informed Mitigation").
//
// When the detector fires, LEAF:
//   1. takes the latest labeled window ("the latest drifting samples");
//   2. runs the explainer on it: permutation importance -> correlation
//      grouping -> the top `num_groups` representative features;
//   3. for each group in turn, computes the LEA error distribution E_L of
//      the current model over the representative feature's quantile bins
//      and restructures the training set:
//        - FORGETTING: old training samples falling into high-error bins
//          are dropped — with probability linear in the bin error when the
//          target KPI's dispersion (Std/Mean) is >= 1, or deterministically
//          for samples in the top-5%-error region when dispersion is < 1
//          ("we forget the samples of the original dataset with over 95%
//          error");
//        - OVER-SAMPLING: the freed slots are refilled by sampling the
//          latest drifting samples with per-bin weights that are *cubic*
//          in E_L for high-dispersion KPIs (focus hard on the worst
//          regions) and *linear* for low-dispersion KPIs;
//   4. retrains on the restructured set, which keeps the original size so
//      every scheme pays the same per-retrain cost (§6.1).
//
// Successive drift events operate on the previously restructured set
// ("each round of forgetting and over-sampling is based on the previous
// round of the restructured training set") — the engine feeds back
// current_train, so this falls out naturally.
#pragma once

#include "core/scheme.hpp"
#include "explain/grouping.hpp"

namespace leaf::core {

struct LeafConfig {
  /// Number of feature groups used per mitigation (the paper evaluates 1,
  /// 3, and 5).
  int num_groups = 1;
  /// LEA quantile bins for the error distribution E_L.
  int lea_bins = 10;
  /// Dispersion (Std/Mean of the target over the dataset) at or above
  /// which the high-dispersion strategy is used.
  double dispersion_threshold = 1.0;
  /// Low-dispersion forgetting strength: drift in these KPIs is
  /// homogeneous (§6.2 "more homogenous distribution changes"), so stale
  /// samples are dropped with probability `strength * normalized bin
  /// error` — wholesale replacement wherever the model is wrong.
  double forget_strength_low = 1.0;
  /// High-dispersion forgetting strength: bursty KPIs need history to
  /// resist overfitting transient spikes (the failure mode that makes
  /// triggered retraining *increase* GDR error by 44% in Table 4), so
  /// forgetting is much gentler and the focus shifts to cubic
  /// over-sampling from the months-long pool.
  double forget_strength_high = 0.3;
  /// Hard cap on any per-sample drop probability.
  double forget_cap = 0.95;
  /// Age-based forgetting (low-dispersion path): samples whose *target*
  /// day is older than pool_window also face this drop probability per
  /// mitigation round, regardless of bin error.  Under multiplicative
  /// growth, very old samples sit in low-error bins (the fresh data
  /// dominates those bins) yet still drag the fitted level down; this term
  /// drains them over successive retrains.
  double forget_age_prob = 0.35;
  /// Over-sampling weight floor (fraction of the max bin error) so every
  /// region of the latest window keeps some representation.
  double oversample_floor = 0.05;
  /// The over-sampling pool is "the existing collected dataset (including
  /// the latest drifting samples)" (§4.3); it is truncated to the most
  /// recent `pool_window` labeled days for tractability.  A months-long
  /// pool is what makes the cubic high-dispersion strategy robust: burst
  /// samples are a minority inside every high-error bin, so focused
  /// over-sampling refreshes the region without overfitting the transient.
  int pool_window = 120;
  /// Recency half-life (days) applied to pool samples on the
  /// high-dispersion path: the draw weight decays as exp(-age / tau).
  /// This is the continuous form of forgetting — old pool samples fade
  /// rather than being cut off — and is what lets LEAF track regime
  /// switches (e.g. the end of the PU data-loss outage, Fig. 9b) without
  /// giving up the burst robustness of a months-long pool.
  double recency_tau_days = 45.0;
  /// Candidate validation: before proposing the restructured set, LEAF
  /// fits a candidate model on it and compares candidate vs current model
  /// on the recency-weighted pool.  The retrain is *rejected* when the
  /// candidate's weighted NRMSE exceeds the current model's by more than
  /// this factor.  This enforces the paper's observed property that
  /// "LEAF consistently mitigates drift across all models, i.e., their
  /// ΔNRMSE̅s are always negative" — a retrain that would chase a
  /// transient burst regime fails validation and is skipped, which is also
  /// why LEAF needs fewer retrains than triggered on bursty KPIs.
  /// Low-dispersion KPIs tolerate a mildly worse candidate (gradual drift
  /// means the pool's older half flatters the old model); bursty
  /// high-dispersion KPIs demand strict improvement — that is where
  /// poisoned retrains happen and where the paper's LEAF spends far fewer
  /// retrains than triggered.  Set huge to disable validation.
  double validation_tolerance_low = 1.3;
  double validation_tolerance_high = 1.0;
  /// Permutation-importance evaluation rows / repeats (runtime knobs).
  std::size_t importance_max_rows = 512;
  int importance_repeats = 2;
  /// Correlation threshold for feature grouping.
  double corr_threshold = 0.7;
  std::uint64_t seed = 99;
};

class LeafScheme final : public MitigationScheme {
 public:
  /// `target_dispersion` is the Std/Mean of the target KPI over the
  /// dataset (Table 2), which selects the mitigation aggressiveness.
  LeafScheme(LeafConfig cfg, double target_dispersion);

  void reset() override;
  std::optional<data::SupervisedSet> on_step(const SchemeContext& ctx) override;
  std::string name() const override;

  /// The feature groups chosen at the most recent mitigation (empty before
  /// the first drift event) — surfaced so benches / the case study can
  /// report which features explained the drift.
  const std::vector<explain::FeatureGroup>& last_groups() const {
    return last_groups_;
  }

  /// Error contrast of the most recent drift event's first feature group:
  /// 1 - weighted_mean(E_L)/max(E_L), near 1 when the error concentrates
  /// in a few feature bins, near 0 for homogeneous drift.
  double last_contrast() const { return last_contrast_; }

  void save_state(io::Serializer& out) const override;
  void load_state(io::Deserializer& in) override;

 private:
  /// One round of forgetting + over-sampling against a representative
  /// feature.  `latest` defines the error distribution E_L; `pool` is the
  /// collected data that over-sampling draws from.  Returns the
  /// restructured training set (same size as `train`).
  data::SupervisedSet restructure(const SchemeContext& ctx,
                                  const data::SupervisedSet& train,
                                  const data::SupervisedSet& latest,
                                  const data::SupervisedSet& pool,
                                  int representative, Rng& rng) const;

  LeafConfig cfg_;
  double dispersion_;
  Rng rng_;
  std::vector<explain::FeatureGroup> last_groups_;
  double last_contrast_ = 0.0;
};

}  // namespace leaf::core
