#include "core/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/metrics.hpp"
#include "models/ensemble.hpp"

namespace leaf::core {

// --- Paired Learners -------------------------------------------------------

PairedLearnersScheme::PairedLearnersScheme(PairedLearnersConfig cfg)
    : cfg_(cfg) {}

void PairedLearnersScheme::reset() {
  reactive_.reset();
  steps_since_refit_ = 0;
  reactive_wins_.clear();
}

std::optional<data::SupervisedSet> PairedLearnersScheme::on_step(
    const SchemeContext& ctx) {
  // Refit the reactive learner periodically on the latest window.
  if (reactive_ == nullptr || ++steps_since_refit_ >= cfg_.refit_every) {
    const data::SupervisedSet window =
        latest_labeled_window(ctx.featurizer, ctx.eval_day, ctx.train_window);
    if (!window.empty() && ctx.prototype != nullptr) {
      reactive_ = ctx.prototype->clone_untrained();
      reactive_->fit(window.X, window.y);
      steps_since_refit_ = 0;
    }
  }
  if (reactive_ == nullptr || !reactive_->trained()) return std::nullopt;

  // Score the pair on the most recent labeled day (the freshest ground
  // truth available without leakage).
  const data::SupervisedSet probe =
      latest_labeled_window(ctx.featurizer, ctx.eval_day, 1);
  if (probe.empty()) return std::nullopt;
  const double range = ctx.featurizer.norm_range();
  const double stable_err =
      metrics::nrmse(ctx.model.predict(probe.X), probe.y, range);
  const double reactive_err =
      metrics::nrmse(reactive_->predict(probe.X), probe.y, range);

  reactive_wins_.push_back(reactive_err < stable_err);
  if (static_cast<int>(reactive_wins_.size()) > cfg_.comparison_window)
    reactive_wins_.pop_front();
  if (static_cast<int>(reactive_wins_.size()) < cfg_.comparison_window)
    return std::nullopt;

  int wins = 0;
  for (bool w : reactive_wins_) wins += w;
  const double frac =
      static_cast<double>(wins) / static_cast<double>(reactive_wins_.size());
  if (frac <= cfg_.replace_threshold) return std::nullopt;

  // Replace the stable learner: hand the engine the reactive window so it
  // refits the deployed model on it.
  reactive_wins_.clear();
  return latest_labeled_window(ctx.featurizer, ctx.eval_day,
                               ctx.train_window);
}

// --- AUE2 ---------------------------------------------------------------

Aue2Scheme::Aue2Scheme(Aue2Config cfg) : cfg_(cfg) {}

void Aue2Scheme::reset() {
  last_chunk_day_ = -1;
  members_.clear();
  member_weights_.clear();
  pending_replacement_.reset();
}

std::optional<data::SupervisedSet> Aue2Scheme::on_step(
    const SchemeContext& ctx) {
  if (ctx.prototype == nullptr) return std::nullopt;
  if (last_chunk_day_ < 0) last_chunk_day_ = ctx.eval_day;  // clock start
  if (ctx.eval_day - last_chunk_day_ < cfg_.chunk_days) return std::nullopt;
  last_chunk_day_ = ctx.eval_day;

  const data::SupervisedSet chunk =
      latest_labeled_window(ctx.featurizer, ctx.eval_day, ctx.train_window);
  if (chunk.empty()) return std::nullopt;

  // Candidate trained on the newest chunk.
  std::shared_ptr<models::Regressor> candidate = ctx.prototype->clone_untrained();
  candidate->fit(chunk.X, chunk.y);
  if (!candidate->trained()) return std::nullopt;

  // Score every member and the candidate on the newest chunk.
  auto mse_on_chunk = [&](const models::Regressor& m) {
    const std::vector<double> pred = m.predict(chunk.X);
    double acc = 0.0;
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      const double d = pred[i] - chunk.y[i];
      acc += d * d;
    }
    return acc / static_cast<double>(chunk.size());
  };

  std::vector<std::shared_ptr<const models::Regressor>> pool = members_;
  pool.push_back(candidate);
  std::vector<double> weights(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i)
    weights[i] = 1.0 / (mse_on_chunk(*pool[i]) + cfg_.eps);

  // Keep the best max_members by weight.
  std::vector<std::size_t> order(pool.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return weights[a] > weights[b]; });
  members_.clear();
  member_weights_.clear();
  for (std::size_t i = 0;
       i < std::min<std::size_t>(order.size(),
                                 static_cast<std::size_t>(cfg_.max_members));
       ++i) {
    members_.push_back(pool[order[i]]);
    member_weights_.push_back(weights[order[i]]);
  }

  auto ensemble = std::make_unique<models::WeightedEnsemble>();
  for (std::size_t i = 0; i < members_.size(); ++i)
    ensemble->add_member(members_[i], member_weights_[i]);
  pending_replacement_ = std::move(ensemble);
  return std::nullopt;  // model delivered via take_replacement_model()
}

std::unique_ptr<models::Regressor> Aue2Scheme::take_replacement_model() {
  return std::move(pending_replacement_);
}

}  // namespace leaf::core
