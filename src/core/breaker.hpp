// Retrain circuit breaker.
//
// A pathological KPI — a broken collector, a permanently bimodal series,
// a drift detector mis-tuned for the stream — can request retrains every
// few evaluation days, burning fleet CPU without converging.  The
// breaker bounds that: more than `max_retrains` retrains inside a
// sliding window of `window_days` trips it OPEN, after which retrain
// requests are suppressed (the shard keeps serving its frozen model,
// mirroring the ingest OUTAGE freeze) until `cooldown_days` have passed.
// The first request after the cooldown moves the breaker HALF_OPEN and
// is allowed through as a probe; if the storm persists the window
// re-trips immediately, otherwise the breaker closes.
//
// All state advances in evaluation *days*, never wall-clock, so breaker
// decisions are part of the deterministic computation: bit-identical at
// any thread count and across snapshot/restore (state save/load below).
#pragma once

#include <cstdint>
#include <vector>

#include "io/serializer.hpp"

namespace leaf::core {

struct BreakerConfig {
  /// Retrains allowed inside the sliding window before the breaker trips;
  /// 0 disables the breaker entirely.
  int max_retrains = 0;
  /// Sliding-window length in days.
  int window_days = 30;
  /// Days the breaker stays OPEN before half-opening.
  int cooldown_days = 60;

  bool enabled() const { return max_retrains > 0; }
};

class RetrainBreaker {
 public:
  enum class State : std::uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  RetrainBreaker() = default;
  explicit RetrainBreaker(BreakerConfig cfg) : cfg_(cfg) {}

  /// Gate for a retrain request on evaluation day `day` (days must be
  /// non-decreasing across calls).  True = proceed with the retrain (and
  /// the request is recorded against the window); false = suppress.
  bool allow(int day);

  State state() const { return state_; }
  const char* state_name() const;
  const BreakerConfig& config() const { return cfg_; }
  int trips() const { return trips_; }
  int suppressed() const { return suppressed_; }
  /// Day the current OPEN period ends (meaningful while open()).
  int open_until() const { return open_until_; }
  bool open() const { return state_ == State::kOpen; }

  void reset();

  /// Snapshot hooks (leaf::io): the breaker is part of a serve shard's
  /// mutable state, so crash-equivalence requires it to round-trip.
  void save_state(io::Serializer& out) const;
  void load_state(io::Deserializer& in);

 private:
  void prune(int day);

  BreakerConfig cfg_;
  State state_ = State::kClosed;
  std::vector<int> window_;  ///< days of recorded retrains, ascending
  int open_until_ = 0;
  int trips_ = 0;
  int suppressed_ = 0;
};

}  // namespace leaf::core
