#include "core/experiment.hpp"

#include <cstdlib>
#include <stdexcept>

#include "common/stats.hpp"
#include "core/baselines.hpp"

namespace leaf::core {

double kpi_dispersion(const data::CellularDataset& ds, data::TargetKpi t) {
  const std::vector<double> values =
      ds.all_values(ds.schema().target_column(t));
  return stats::dispersion(values);
}

EvalConfig make_eval_config(const Scale& scale, std::uint64_t seed) {
  EvalConfig cfg;
  cfg.train_window = 14;
  cfg.anchor_day = -1;  // July 1, 2018
  cfg.horizon = 180;
  cfg.stride = scale.eval_stride_days;
  cfg.seed = seed;
  // KSWIN tuned for the strided daily NRMSE stream: a 60-sample window
  // with a 20-sample test slice re-arms quickly after a detection, which
  // matters for the *gradual* drift phases (growth, the post-2021 ramp)
  // where the error level keeps creeping after each mitigation.
  cfg.detector.window_size = 40;
  cfg.detector.stat_size = 14;
  cfg.detector.alpha = 0.025;
  cfg.detector.seed = seed ^ 0x5EED;
  return cfg;
}

std::unique_ptr<MitigationScheme> make_scheme(const std::string& spec,
                                              double dispersion,
                                              std::uint64_t seed) {
  if (spec == "Static") return std::make_unique<StaticScheme>();
  if (spec == "Triggered") return std::make_unique<TriggeredScheme>();
  if (spec == "PairedLearners") return std::make_unique<PairedLearnersScheme>();
  if (spec == "AUE2") return std::make_unique<Aue2Scheme>();
  if (spec.rfind("Naive", 0) == 0) {
    const int period = std::atoi(spec.c_str() + 5);
    if (period <= 0)
      throw std::invalid_argument("bad periodic scheme spec: " + spec);
    return std::make_unique<PeriodicScheme>(period);
  }
  if (spec.rfind("LEAF", 0) == 0) {
    LeafConfig cfg;
    cfg.seed = seed;
    if (spec.size() > 4) {
      const int groups = std::atoi(spec.c_str() + 4);
      if (groups <= 0)
        throw std::invalid_argument("bad LEAF scheme spec: " + spec);
      cfg.num_groups = groups;
    }
    return std::make_unique<LeafScheme>(cfg, dispersion);
  }
  throw std::invalid_argument("unknown scheme spec: " + spec);
}

std::span<const std::uint64_t> default_seeds() {
  static const std::uint64_t kSeeds[] = {11, 22, 33};
  return kSeeds;
}

std::vector<SchemeOutcome> compare_schemes(
    const data::CellularDataset& ds, data::TargetKpi target,
    models::ModelFamily family, const Scale& scale,
    std::span<const std::string> specs,
    std::span<const std::uint64_t> seeds) {
  const data::Featurizer featurizer(ds, target);
  const double dispersion = kpi_dispersion(ds, target);

  std::vector<SchemeOutcome> outcomes(specs.size());
  for (std::size_t s = 0; s < specs.size(); ++s) outcomes[s].scheme = specs[s];

  double static_nrmse_acc = 0.0, static_p95_acc = 0.0;
  for (const std::uint64_t seed : seeds) {
    const auto prototype = models::make_model(family, scale, seed);
    EvalConfig cfg = make_eval_config(scale, seed);

    StaticScheme static_scheme;
    const EvalResult static_run =
        run_scheme(featurizer, *prototype, static_scheme, cfg);
    static_nrmse_acc += static_run.avg_nrmse();
    static_p95_acc += static_run.ne_p95;

    for (std::size_t s = 0; s < specs.size(); ++s) {
      const auto scheme = make_scheme(specs[s], dispersion, seed ^ 0x99);
      const EvalResult run = run_scheme(featurizer, *prototype, *scheme, cfg);
      outcomes[s].avg_nrmse += run.avg_nrmse();
      outcomes[s].delta_pct += delta_vs_static(run, static_run);
      outcomes[s].retrains += run.retrain_count();
      outcomes[s].ne_p95 += run.ne_p95;
    }
  }

  const double n = static_cast<double>(seeds.size());
  for (auto& o : outcomes) {
    o.avg_nrmse /= n;
    o.delta_pct /= n;
    o.retrains /= n;
    o.ne_p95 /= n;
    o.static_nrmse = static_nrmse_acc / n;
    o.static_ne_p95 = static_p95_acc / n;
  }
  return outcomes;
}

}  // namespace leaf::core
