#include "core/experiment.hpp"

#include <cstdlib>
#include <stdexcept>

#include "common/stats.hpp"
#include "core/baselines.hpp"
#include "core/eval_cache.hpp"
#include "par/parallel.hpp"

namespace leaf::core {

double kpi_dispersion(const data::CellularDataset& ds, data::TargetKpi t) {
  const std::vector<double> values =
      ds.all_values(ds.schema().target_column(t));
  return stats::dispersion(values);
}

EvalConfig make_eval_config(const Scale& scale, std::uint64_t seed) {
  EvalConfig cfg;
  cfg.train_window = 14;
  cfg.anchor_day = -1;  // July 1, 2018
  cfg.horizon = 180;
  cfg.stride = scale.eval_stride_days;
  cfg.seed = seed;
  // KSWIN tuned for the strided daily NRMSE stream: a 60-sample window
  // with a 20-sample test slice re-arms quickly after a detection, which
  // matters for the *gradual* drift phases (growth, the post-2021 ramp)
  // where the error level keeps creeping after each mitigation.
  cfg.detector.window_size = 40;
  cfg.detector.stat_size = 14;
  cfg.detector.alpha = 0.025;
  cfg.detector.seed = seed ^ 0x5EED;
  return cfg;
}

std::unique_ptr<MitigationScheme> make_scheme(const std::string& spec,
                                              double dispersion,
                                              std::uint64_t seed) {
  if (spec == "Static") return std::make_unique<StaticScheme>();
  if (spec == "Triggered") return std::make_unique<TriggeredScheme>();
  if (spec == "PairedLearners") return std::make_unique<PairedLearnersScheme>();
  if (spec == "AUE2") return std::make_unique<Aue2Scheme>();
  if (spec.rfind("Naive", 0) == 0) {
    const int period = std::atoi(spec.c_str() + 5);
    if (period <= 0)
      throw std::invalid_argument("bad periodic scheme spec: " + spec);
    return std::make_unique<PeriodicScheme>(period);
  }
  if (spec.rfind("LEAF", 0) == 0) {
    LeafConfig cfg;
    cfg.seed = seed;
    if (spec.size() > 4) {
      const int groups = std::atoi(spec.c_str() + 4);
      if (groups <= 0)
        throw std::invalid_argument("bad LEAF scheme spec: " + spec);
      cfg.num_groups = groups;
    }
    return std::make_unique<LeafScheme>(cfg, dispersion);
  }
  throw std::invalid_argument("unknown scheme spec: " + spec);
}

std::span<const std::uint64_t> default_seeds() {
  static const std::uint64_t kSeeds[] = {11, 22, 33};
  return kSeeds;
}

std::vector<SchemeOutcome> compare_schemes(
    const data::CellularDataset& ds, data::TargetKpi target,
    models::ModelFamily family, const Scale& scale,
    std::span<const std::string> specs,
    std::span<const std::uint64_t> seeds) {
  const data::Featurizer featurizer(ds, target);
  const double dispersion = kpi_dispersion(ds, target);

  std::vector<SchemeOutcome> outcomes(specs.size());
  for (std::size_t s = 0; s < specs.size(); ++s) outcomes[s].scheme = specs[s];

  // All runs walk the same dataset, so they share one slice memo: every
  // per-day test slice is computed once for the whole grid instead of
  // once per (seed, scheme) run.
  EvalCache cache(featurizer);

  // One read-only prototype + config per seed, shared by every run of
  // that seed (run_scheme only ever clones the prototype).
  const std::size_t n_seeds = seeds.size();
  std::vector<std::unique_ptr<models::Regressor>> prototypes(n_seeds);
  std::vector<EvalConfig> cfgs(n_seeds);
  for (std::size_t i = 0; i < n_seeds; ++i) {
    prototypes[i] = models::make_model(family, scale, seeds[i]);
    cfgs[i] = make_eval_config(scale, seeds[i]);
    cfgs[i].cache = &cache;
  }

  // Phase 1: the per-seed Static baselines (every ΔNRMSE̅ needs its
  // same-seed baseline, so these come first).
  std::vector<EvalResult> static_runs =
      par::parallel_map(n_seeds, [&](std::size_t i) {
        StaticScheme static_scheme;
        return run_scheme(featurizer, *prototypes[i], static_scheme, cfgs[i]);
      });

  // Phase 2: the flat seed × scheme grid.  A "Static" arm in `specs`
  // reuses the phase-1 run outright — same prototype, config, and
  // (stateless) scheme make the two runs identical by construction.
  const std::size_t n_tasks = n_seeds * specs.size();
  std::vector<EvalResult> runs =
      par::parallel_map(n_tasks, [&](std::size_t t) {
        const std::size_t i = t / specs.size();
        const std::size_t s = t % specs.size();
        if (specs[s] == "Static") return static_runs[i];
        const auto scheme = make_scheme(specs[s], dispersion, seeds[i] ^ 0x99);
        return run_scheme(featurizer, *prototypes[i], *scheme, cfgs[i]);
      });

  // Ordered accumulation in the historical (seed-outer, scheme-inner)
  // fold order, so the averages are bit-identical at any thread count.
  double static_nrmse_acc = 0.0, static_p95_acc = 0.0;
  for (std::size_t i = 0; i < n_seeds; ++i) {
    static_nrmse_acc += static_runs[i].avg_nrmse();
    static_p95_acc += static_runs[i].ne_p95;
    for (std::size_t s = 0; s < specs.size(); ++s) {
      const EvalResult& run = runs[i * specs.size() + s];
      outcomes[s].avg_nrmse += run.avg_nrmse();
      outcomes[s].delta_pct += delta_vs_static(run, static_runs[i]);
      outcomes[s].retrains += run.retrain_count();
      outcomes[s].ne_p95 += run.ne_p95;
    }
  }

  const double n = static_cast<double>(seeds.size());
  for (auto& o : outcomes) {
    o.avg_nrmse /= n;
    o.delta_pct /= n;
    o.retrains /= n;
    o.ne_p95 /= n;
    o.static_nrmse = static_nrmse_acc / n;
    o.static_ne_p95 = static_p95_acc / n;
  }
  return outcomes;
}

}  // namespace leaf::core
