#include "core/evaluation.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/calendar.hpp"
#include "common/metrics.hpp"
#include "common/stats.hpp"

namespace leaf::core {

double EvalResult::avg_nrmse() const { return stats::mean(nrmse); }

EvalResult run_scheme(const data::Featurizer& featurizer,
                      const models::Regressor& prototype,
                      MitigationScheme& scheme, const EvalConfig& cfg,
                      const StepObserver& observer,
                      const PredictionSink& sink) {
  EvalResult result;
  result.scheme = scheme.name();
  result.model = prototype.name();

  const int anchor =
      cfg.anchor_day >= 0 ? cfg.anchor_day : cal::anchor_2018_07_01();
  const double norm_range = featurizer.norm_range();
  const int num_days = featurizer.dataset().num_days();

  // Initial model: trained on the `train_window` days ending at the
  // anchor.
  data::SupervisedSet train =
      featurizer.window(anchor - cfg.train_window + 1, anchor);
  assert(!train.empty() && "anchor window produced no training pairs");
  std::unique_ptr<models::Regressor> model = prototype.clone_untrained();
  model->fit(train.X, train.y);

  scheme.reset();
  drift::Kswin detector(cfg.detector);
  Rng rng(cfg.seed);

  // First forecastable day: the anchor's forecasts land at
  // anchor + horizon; evaluation starts there.
  const int first_eval = anchor + cfg.horizon;
  std::vector<double> abs_ne_samples;

  for (int day = first_eval; day < num_days; day += cfg.stride) {
    const data::SupervisedSet test = featurizer.at_target_day(day);
    if (static_cast<int>(test.size()) < cfg.min_samples_per_day) continue;

    const std::vector<double> pred = model->predict(test.X);
    const double err = metrics::nrmse(pred, test.y, norm_range);
    if (sink) sink(day, test, pred);

    double ne_acc = 0.0;
    for (std::size_t i = 0; i < test.size(); ++i) {
      const double ne = metrics::normalized_error(pred[i], test.y[i], norm_range);
      ne_acc += ne;
      abs_ne_samples.push_back(std::abs(ne));
    }

    result.days.push_back(day);
    result.nrmse.push_back(err);
    result.mean_ne.push_back(ne_acc / static_cast<double>(test.size()));

    const bool drift = detector.update(err);
    if (drift) result.drift_days.push_back(day);

    SchemeContext ctx{.featurizer = featurizer,
                      .model = *model,
                      .current_train = train,
                      .eval_day = day,
                      .nrmse = err,
                      .drift = drift,
                      .train_window = cfg.train_window,
                      .rng = &rng,
                      .prototype = &prototype};
    std::optional<data::SupervisedSet> new_train = scheme.on_step(ctx);
    bool retrained = false;
    if (std::unique_ptr<models::Regressor> replacement =
            scheme.take_replacement_model()) {
      // Ensemble-style scheme: install the model it built directly.
      model = std::move(replacement);
      result.retrain_days.push_back(day);
      retrained = true;
    } else if (new_train.has_value() && !new_train->empty()) {
      train = std::move(*new_train);
      model = prototype.clone_untrained();
      model->fit(train.X, train.y);
      result.retrain_days.push_back(day);
      retrained = true;
    }
    if (observer) observer(day, err, drift, retrained);
  }

  result.ne_p95 =
      abs_ne_samples.empty() ? 0.0 : stats::quantile(abs_ne_samples, 0.95);
  return result;
}

double delta_vs_static(const EvalResult& mitigated,
                       const EvalResult& static_run) {
  return metrics::delta_nrmse_pct(mitigated.nrmse, static_run.nrmse);
}

}  // namespace leaf::core
