#include "core/evaluation.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "common/calendar.hpp"
#include "common/metrics.hpp"
#include "common/stats.hpp"
#include "core/eval_cache.hpp"
#include "obs/metrics.hpp"

namespace leaf::core {

double EvalResult::avg_nrmse() const { return stats::mean(nrmse); }

namespace {

std::string fmt6(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// OUTAGE on either the day being scored or the day its features came
/// from means the step's error is dominated by collection loss, not by
/// the model: the detector must not see it.
bool outage_at_step(std::span<const ingest::HealthState> health, int day,
                    int horizon) {
  const auto state_at = [&health](int d) {
    return d >= 0 && d < static_cast<int>(health.size()) &&
           health[static_cast<std::size_t>(d)] == ingest::HealthState::kOutage;
  };
  return !health.empty() && (state_at(day) || state_at(day - horizon));
}

}  // namespace

EvalResult run_scheme(const data::Featurizer& featurizer,
                      const models::Regressor& prototype,
                      MitigationScheme& scheme, const EvalConfig& cfg,
                      const StepObserver& observer,
                      const PredictionSink& sink) {
  EvalResult result;
  result.scheme = scheme.name();
  result.model = prototype.name();

  const int anchor =
      cfg.anchor_day >= 0 ? cfg.anchor_day : cal::anchor_2018_07_01();
  const double norm_range = cfg.norm_range_override > 0.0
                                ? cfg.norm_range_override
                                : featurizer.norm_range();
  const int num_days = featurizer.dataset().num_days();

  // Initial model: trained on the `train_window` days ending at the
  // anchor.
  data::SupervisedSet train =
      cfg.cache != nullptr
          ? cfg.cache->window(anchor - cfg.train_window + 1, anchor)
          : featurizer.window(anchor - cfg.train_window + 1, anchor);
  if (train.empty()) {
    throw std::runtime_error(
        "run_scheme: training window [" +
        cal::day_to_string(anchor - cfg.train_window + 1) + " .. " +
        cal::day_to_string(anchor) + "] (anchor day " + std::to_string(anchor) +
        ", " + std::to_string(cfg.train_window) +
        " days) produced no supervised pairs — no eNodeB reports on both a "
        "feature day and its +"
        + std::to_string(cfg.horizon) + "-day target day");
  }
  // Run-scoped fit caches (bin-edge reuse across retrains): every clone
  // trained by this run attaches to the same instance, so consecutive
  // retrains on overlapping windows skip most of the quantile work.
  models::FitCaches fit_caches;
  std::unique_ptr<models::Regressor> model = prototype.clone_untrained();
  model->attach_caches(&fit_caches);
  {
    LEAF_SPAN("run_scheme.initial_fit");
    model->fit(train.X, train.y);
  }

  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Counter& steps_ctr = reg.counter("leaf_eval_steps_total");
  obs::Counter& scored_ctr = reg.counter("leaf_eval_days_scored_total");
  obs::Counter& skipped_ctr = reg.counter("leaf_eval_days_skipped_total");
  obs::Counter& nonfinite_ctr = reg.counter("leaf_eval_nonfinite_total");
  obs::Counter& frozen_ctr = reg.counter("leaf_eval_outage_frozen_total");
  obs::Counter& drift_ctr = reg.counter("leaf_drift_events_total");
  obs::Counter& retrain_ctr = reg.counter("leaf_retrains_total");
  obs::Histogram& retrain_latency = reg.histogram(
      "leaf_retrain_latency_seconds", obs::latency_buckets());
  const std::string kpi_label = data::to_string(featurizer.target());
  const auto emit = [&](obs::EventKind kind, int day, std::string detail,
                        double seconds = 0.0) {
    if (cfg.events == nullptr) return;
    cfg.events->emit({kind, day, cfg.obs_shard, kpi_label, result.model,
                      result.scheme, std::move(detail), seconds});
  };

  scheme.reset();
  drift::Kswin detector(cfg.detector);
  Rng rng(cfg.seed);

  // First forecastable day: the anchor's forecasts land at
  // anchor + horizon; evaluation starts there.
  const int first_eval = anchor + cfg.horizon;
  std::vector<double> abs_ne_samples;
  data::SupervisedSet test_local;  // storage for the uncached path
  std::vector<double> pred;        // reused prediction buffer

  for (int day = first_eval; day < num_days; day += cfg.stride) {
    steps_ctr.inc();
    const data::SupervisedSet* test_p;
    if (cfg.cache != nullptr) {
      test_p = &cfg.cache->at_target_day(day);
    } else {
      test_local = featurizer.at_target_day(day);
      test_p = &test_local;
    }
    const data::SupervisedSet& test = *test_p;
    if (static_cast<int>(test.size()) < cfg.min_samples_per_day) {
      ++result.degraded.days_skipped;
      skipped_ctr.inc();
      continue;
    }

    pred.resize(test.size());
    model->predict_into(test.X, pred);
    const double err = metrics::nrmse(pred, test.y, norm_range);
    if (cfg.guard_nonfinite && !std::isfinite(err)) {
      // A corrupt test slice must poison neither the NRMSE series nor the
      // detector window; the step is skipped and accounted for.
      ++result.degraded.nonfinite_errors;
      nonfinite_ctr.inc();
      emit(obs::EventKind::kNonFinite, day,
           "rows=" + std::to_string(test.size()));
      if (observer) observer(day, err, false, false);
      continue;
    }
    // Collection outage on this step: labels and/or features are imputed
    // placeholders, so the error measures data loss, not the model.  The
    // step is not scored, the detector is frozen (no update, no
    // truncation), and the scheme is suppressed so the outage cannot
    // trigger a retrain on a fabricated window.
    if (outage_at_step(cfg.target_health, day, cfg.horizon)) {
      ++result.degraded.frozen_detector_days;
      ++result.degraded.suppressed_retrains;
      frozen_ctr.inc();
      emit(obs::EventKind::kOutageFreeze, day, "nrmse=" + fmt6(err));
      if (observer) observer(day, err, false, false);
      continue;
    }
    if (sink) sink(day, test, pred);
    scored_ctr.inc();

    double ne_acc = 0.0;
    std::size_t ne_count = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
      const double ne = metrics::normalized_error(pred[i], test.y[i], norm_range);
      if (cfg.guard_nonfinite && !std::isfinite(ne)) continue;
      ne_acc += ne;
      ++ne_count;
      abs_ne_samples.push_back(std::abs(ne));
    }

    result.days.push_back(day);
    result.nrmse.push_back(err);
    result.mean_ne.push_back(
        ne_count > 0 ? ne_acc / static_cast<double>(ne_count) : 0.0);

    const bool drift = detector.update(err);
    if (drift) {
      result.drift_days.push_back(day);
      drift_ctr.inc();
      emit(obs::EventKind::kDrift, day,
           "detector=KSWIN,p=" + fmt6(detector.last_p_value()) +
               ",nrmse=" + fmt6(err));
    }

    SchemeContext ctx{.featurizer = featurizer,
                      .model = *model,
                      .current_train = train,
                      .eval_day = day,
                      .nrmse = err,
                      .drift = drift,
                      .train_window = cfg.train_window,
                      .rng = &rng,
                      .prototype = &prototype,
                      .cache = cfg.cache,
                      .events = cfg.events,
                      .shard = cfg.obs_shard};
    // Wall-clock on the trigger→fit→swap path (scheme decision + refit);
    // the clock is read only when obs is runtime-enabled.
    const double retrain_t0 = obs::enabled() ? obs::monotonic_seconds() : 0.0;
    std::optional<data::SupervisedSet> new_train = scheme.on_step(ctx);
    bool retrained = false;
    if (std::unique_ptr<models::Regressor> replacement =
            scheme.take_replacement_model()) {
      // Ensemble-style scheme: install the model it built directly.
      model = std::move(replacement);
      result.retrain_days.push_back(day);
      retrained = true;
    } else if (new_train.has_value() && !new_train->empty()) {
      train = std::move(*new_train);
      model = prototype.clone_untrained();
      model->attach_caches(&fit_caches);
      {
        LEAF_SPAN("run_scheme.retrain_fit");
        model->fit(train.X, train.y);
      }
      result.retrain_days.push_back(day);
      retrained = true;
    }
    if (retrained) {
      const double secs =
          obs::enabled() ? obs::monotonic_seconds() - retrain_t0 : 0.0;
      retrain_ctr.inc();
      retrain_latency.observe(secs);
      emit(obs::EventKind::kRetrain, day,
           "train_rows=" + std::to_string(train.size()), secs);
    }
    if (observer) observer(day, err, drift, retrained);
  }

  result.ne_p95 =
      abs_ne_samples.empty() ? 0.0 : stats::quantile(abs_ne_samples, 0.95);
  if (cfg.ingest_report != nullptr) {
    result.degraded.values_imputed = cfg.ingest_report->values_imputed;
    result.degraded.quarantined_records = cfg.ingest_report->quarantined_records;
  }
  return result;
}

double delta_vs_static(const EvalResult& mitigated,
                       const EvalResult& static_run) {
  return metrics::delta_nrmse_pct(mitigated.nrmse, static_run.nrmse);
}

}  // namespace leaf::core
