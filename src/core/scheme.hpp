// Drift-mitigation schemes.
//
// The paper compares four ways of maintaining a deployed forecasting
// model (§3.4, §6.1):
//   * Static          — train once, never retrain (the ΔNRMSE̅ baseline);
//   * Periodic(N)     — "naïve retraining": replace the model every N
//                       calendar days with one trained on the latest
//                       14-day window;
//   * Triggered       — retrain on the latest window whenever the drift
//                       detector fires;
//   * LEAF            — on detection, explain the drift and rebuild the
//                       training set by informed forgetting +
//                       over-sampling (leaf_scheme.hpp).
//
// A scheme is a policy object driven by the evaluation engine: after each
// evaluation step it may return a new training set, which the engine uses
// to refit a fresh clone of the model.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "common/rng.hpp"
#include "data/features.hpp"
#include "models/regressor.hpp"

namespace leaf::obs {
class EventLog;
}

namespace leaf::core {

class EvalCache;

/// Everything a scheme may inspect when deciding whether / how to retrain.
struct SchemeContext {
  const data::Featurizer& featurizer;
  const models::Regressor& model;       ///< model currently in use
  const data::SupervisedSet& current_train;  ///< training set in use
  int eval_day = 0;       ///< target day just evaluated
  double nrmse = 0.0;     ///< NRMSE at this step
  bool drift = false;     ///< detector fired at this step
  int train_window = 14;  ///< length (days) of a standard training window
  Rng* rng = nullptr;
  /// Untrained prototype of the deployed model family; schemes that
  /// validate a candidate training set before proposing it (LEAF) fit a
  /// clone of this.  May be null for policies that don't validate.
  const models::Regressor* prototype = nullptr;
  /// Optional slice memo shared across runs (see core/eval_cache.hpp);
  /// schemes route window materialization through it when present.
  EvalCache* cache = nullptr;
  /// Optional drift-event sink (leaf::obs) for scheme-level decisions —
  /// LEAF emits a `retrain_rejected` event when candidate validation
  /// vetoes a retrain.  Single-writer; may be null.
  obs::EventLog* events = nullptr;
  /// Serve shard index stamped on emitted events (-1 outside serve).
  int shard = -1;
};

class MitigationScheme {
 public:
  virtual ~MitigationScheme() = default;

  /// Resets policy state before an evaluation run.
  virtual void reset() = 0;

  /// Called after every evaluation step.  Returns the new training set if
  /// the policy wants a retrain, std::nullopt otherwise.
  virtual std::optional<data::SupervisedSet> on_step(
      const SchemeContext& ctx) = 0;

  /// Ensemble-style policies (AUE2) build the replacement model
  /// themselves instead of handing the engine a training set.  When this
  /// returns non-null after on_step, the engine installs the model
  /// directly (counted as a retrain) and ignores on_step's training set.
  virtual std::unique_ptr<models::Regressor> take_replacement_model() {
    return nullptr;
  }

  virtual std::string name() const = 0;

  /// Snapshot hooks (leaf::io): serialize / restore all policy state that
  /// evolves across steps.  Defaults throw io::SnapshotError so ensemble
  /// policies that keep unserialized model banks (PairedLearners, AUE2)
  /// fail snapshots loudly instead of resuming wrong.
  virtual void save_state(io::Serializer& out) const;
  virtual void load_state(io::Deserializer& in);
};

/// Never retrains.
class StaticScheme final : public MitigationScheme {
 public:
  void reset() override {}
  std::optional<data::SupervisedSet> on_step(const SchemeContext&) override {
    return std::nullopt;
  }
  std::string name() const override { return "Static"; }
  void save_state(io::Serializer&) const override {}  // stateless
  void load_state(io::Deserializer&) override {}
};

/// Retrains every `period_days` calendar days on the latest labeled
/// window, regardless of whether drift occurred (§3.4).
class PeriodicScheme final : public MitigationScheme {
 public:
  explicit PeriodicScheme(int period_days);
  void reset() override;
  std::optional<data::SupervisedSet> on_step(const SchemeContext& ctx) override;
  std::string name() const override;
  void save_state(io::Serializer& out) const override;
  void load_state(io::Deserializer& in) override;

 private:
  int period_;
  int last_retrain_day_ = -1;
};

/// Retrains on the latest labeled window whenever the detector fires.
class TriggeredScheme final : public MitigationScheme {
 public:
  void reset() override {}
  std::optional<data::SupervisedSet> on_step(const SchemeContext& ctx) override;
  std::string name() const override { return "Triggered"; }
  void save_state(io::Serializer&) const override {}  // stateless
  void load_state(io::Deserializer&) override {}
};

/// The most recent fully-labeled `window` days of supervised pairs as of
/// evaluation day `eval_day`: feature days
/// [eval_day - horizon - window + 1, eval_day - horizon].  Shared by the
/// periodic, triggered, and LEAF schemes (LEAF calls these "the latest
/// drifting samples").
data::SupervisedSet latest_labeled_window(const data::Featurizer& featurizer,
                                          int eval_day, int window);

/// Same, but served from ctx.cache when one is attached (bit-identical to
/// the uncached path; the Featurizer is a pure function of the day range).
data::SupervisedSet latest_labeled_window(const SchemeContext& ctx,
                                          int window);

}  // namespace leaf::core
